"""Analytical ASIC area and critical-path model (Section 5.3).

The paper synthesises the design in a commercial 22 nm FinFET process:
the deserializer closes timing at 1.95 GHz in 0.133 mm^2 and the
serializer at 1.84 GHz in 0.278 mm^2.

We cannot run synthesis in Python, so this model reproduces those numbers
from a first-order component inventory: each block contributes area from
SRAM buffering, flop storage, and combinational logic, using nominal
22 nm FinFET density figures.  Critical paths are estimated from the
deepest combinational structure in each unit -- the 10-byte varint
decoder's priority-encode and shift network in the deserializer, and the
wider round-robin output-sequencing mux tree (more FSUs to arbitrate plus
key injection) in the serializer, which is why the serializer is both
bigger and slightly slower despite simpler per-field work.

Component sizes are calibrated against the paper's published totals; the
ablation benchmark varies the inventory (context stack depth, FSU count)
to quantify each design choice's area cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: um^2 per NAND2-equivalent of combinational logic in 22 nm FinFET,
#: including wiring/utilisation overhead.
UM2_PER_GATE = 0.05
#: um^2 per bit of flop-based storage (pipeline registers, small stacks).
UM2_PER_FLOP_BIT = 0.35
#: um^2 per bit of SRAM (stream buffers, caches, larger stacks).
UM2_PER_SRAM_BIT = 0.12
#: Gate delay in ps for a fanout-4 inverter-equivalent stage at 22 nm.
PS_PER_GATE_STAGE = 11.0
#: Fixed clocking overhead (setup + clk-q + margin) in ps.
CLOCK_OVERHEAD_PS = 95.0


@dataclass(frozen=True)
class Component:
    """One hardware block: storage plus logic gate-equivalents and the
    depth of its worst combinational path in FO4-equivalent stages."""

    name: str
    flop_bits: int
    gates: int
    path_stages: int
    sram_bits: int = 0

    @property
    def area_um2(self) -> float:
        return (self.flop_bits * UM2_PER_FLOP_BIT
                + self.sram_bits * UM2_PER_SRAM_BIT
                + self.gates * UM2_PER_GATE)


@dataclass(frozen=True)
class UnitAsicEstimate:
    """Synthesis-style result for one accelerator unit."""

    name: str
    components: tuple[Component, ...]

    @property
    def area_mm2(self) -> float:
        return sum(c.area_um2 for c in self.components) / 1e6

    @property
    def critical_path_ps(self) -> float:
        deepest = max(c.path_stages for c in self.components)
        return CLOCK_OVERHEAD_PS + deepest * PS_PER_GATE_STAGE

    @property
    def frequency_ghz(self) -> float:
        return 1e3 / self.critical_path_ps

    def breakdown(self) -> list[tuple[str, float]]:
        """Per-component area in mm^2, largest first."""
        rows = [(c.name, c.area_um2 / 1e6) for c in self.components]
        return sorted(rows, key=lambda row: row[1], reverse=True)


def _deserializer_components(
        context_stack_depth: int = 25) -> tuple[Component, ...]:
    """Inventory of Figure 9's blocks.

    The memloader's stream/reorder buffering and the allocation write
    buffers dominate storage; the 10-byte combinational varint decoder
    sets the critical path (38 FO4-equivalent stages -> 1.95 GHz).
    """
    stack_bits = context_stack_depth * 5 * 64
    return (
        Component("memloader buffers", flop_bits=6_000, gates=110_000,
                  path_stages=30, sram_bits=320 * 1024),
        Component("combo varint decoder", flop_bits=1_200, gates=64_000,
                  path_stages=38),
        Component("field handler control", flop_bits=9_000, gates=250_000,
                  path_stages=32),
        Component("ADT loader + entry cache", flop_bits=4_000,
                  gates=85_000, path_stages=26, sram_bits=64 * 144),
        Component("hasbits writer", flop_bits=2_000, gates=30_000,
                  path_stages=18),
        Component("field data writer + alloc buffers", flop_bits=14_000,
                  gates=130_000, path_stages=28, sram_bits=256 * 1024),
        Component("metadata stacks", flop_bits=stack_bits, gates=28_000,
                  path_stages=20),
        Component("mem interface wrappers + TLB", flop_bits=9_000,
                  gates=90_000, path_stages=27, sram_bits=32 * 1024),
    )


def _serializer_components(
        num_fsus: int = 4,
        context_stack_depth: int = 25) -> tuple[Component, ...]:
    """Inventory of Figure 10's blocks.

    The FSU pool replicates per-field datapaths (each with its own varint
    encoder and staging SRAM), and the round-robin output sequencer's wide
    mux tree plus key injection sets the critical path (41 stages ->
    1.84 GHz) -- hence more area and a slightly lower Fmax.
    """
    per_fsu_flops = 16_000
    per_fsu_gates = 180_000
    per_fsu_sram = 160 * 1024
    stack_bits = context_stack_depth * 6 * 64
    return (
        Component("frontend bit-field scanner", flop_bits=8_000,
                  gates=120_000, path_stages=30, sram_bits=16 * 1024),
        Component(f"{num_fsus}x field serializer units",
                  flop_bits=per_fsu_flops * num_fsus,
                  gates=per_fsu_gates * num_fsus, path_stages=34,
                  sram_bits=per_fsu_sram * num_fsus),
        Component("RR dispatch + output sequencer",
                  flop_bits=num_fsus * 2_048,
                  gates=60_000 + 45_000 * num_fsus, path_stages=41),
        Component("memwriter + length stacks",
                  flop_bits=stack_bits + 10_000, gates=150_000,
                  path_stages=32, sram_bits=640 * 1024),
        Component("ADT/bit-field loaders", flop_bits=6_000, gates=90_000,
                  path_stages=26, sram_bits=24 * 1024),
        Component("mem interface wrappers + TLB", flop_bits=9_000,
                  gates=90_000, path_stages=27, sram_bits=32 * 1024),
    )


@dataclass
class AsicModel:
    """Area/frequency estimates for the accelerator in 22 nm FinFET."""

    num_field_serializer_units: int = 4
    context_stack_depth: int = 25
    _deser: UnitAsicEstimate = field(init=False)
    _ser: UnitAsicEstimate = field(init=False)

    def __post_init__(self) -> None:
        self._deser = UnitAsicEstimate(
            "deserializer",
            _deserializer_components(self.context_stack_depth))
        self._ser = UnitAsicEstimate(
            "serializer",
            _serializer_components(self.num_field_serializer_units,
                                   self.context_stack_depth))

    @property
    def deserializer(self) -> UnitAsicEstimate:
        return self._deser

    @property
    def serializer(self) -> UnitAsicEstimate:
        return self._ser

    def report(self) -> str:
        """Section 5.3-style summary table."""
        lines = ["unit          freq (GHz)   area (mm^2)"]
        for unit in (self._deser, self._ser):
            lines.append(f"{unit.name:<13} {unit.frequency_ghz:>9.2f}"
                         f" {unit.area_mm2:>13.3f}")
        return "\n".join(lines)
