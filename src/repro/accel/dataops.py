"""Accelerated clear / copy / merge (Section 7, "Accelerating other
protobuf operations").

The paper observes that merge, copy and clear consume another 17.1% of
fleet-wide C++ protobuf cycles and can reuse the serializer/deserializer
hardware blocks with new custom instructions.  This unit implements the
three operations over C++ object images:

- **clear**: zero the hasbits array -- field storage becomes garbage the
  way arena-backed C++ Clear() leaves it; O(span/64) posted writes.
- **copy**: a deep copy of the object graph into the accelerator arena,
  walking hasbits like the serializer frontend and allocating like the
  deserializer's string/sub-message states.
- **merge**: protobuf MergeFrom semantics -- singular fields overwrite,
  repeated fields append, sub-messages merge recursively.

Cycle accounting follows the same conventions as the other units: one
frontend cycle per present field, beats for bulk copies, dependent
latencies for pointer chases (amortised across the interface wrappers'
outstanding requests), and arena bump-allocation in a cycle.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accel.adt import AdtEntry, AdtView
from repro.memory.arena import AcceleratorArena
from repro.memory.layout import (
    REPEATED_HEADER_BYTES,
    SSO_CAPACITY,
    STRING_OBJECT_BYTES,
    read_string_object,
)
from repro.memory.memspace import SimMemory
from repro.proto.types import CPP_SCALAR_BYTES, FieldType
from repro.soc.config import SoCConfig


@dataclass
class DataOpStats:
    """Outcome of one clear/copy/merge operation."""

    op: str
    cycles: float = 0.0
    fields_processed: int = 0
    bytes_copied: int = 0
    submessages: int = 0
    arena_bytes: int = 0

    def merge_stats(self, other: "DataOpStats") -> None:
        self.cycles += other.cycles
        self.fields_processed += other.fields_processed
        self.bytes_copied += other.bytes_copied
        self.submessages += other.submessages
        self.arena_bytes += other.arena_bytes


@dataclass
class DataOpTimingParams:
    """Per-state cycle costs for the data-ops pipeline."""

    dispatch_overhead: float = 6.0
    per_field: float = 1.0          # hasbits scan + ADT entry (cached)
    scalar_copy: float = 1.0        # posted slot write
    alloc: float = 1.0              # arena bump
    submsg_enter: float = 2.0       # context push + child alloc/init


def _element_width(entry: AdtEntry) -> int:
    ft = entry.field_type
    assert ft is not None
    if ft in (FieldType.STRING, FieldType.BYTES, FieldType.MESSAGE):
        return 8
    return CPP_SCALAR_BYTES[ft]


class MessageOpsUnit:
    """Behavioral model of the clear/copy/merge extension unit."""

    def __init__(self, memory: SimMemory, config: SoCConfig | None = None,
                 timing: DataOpTimingParams | None = None):
        self.memory = memory
        self.config = config or SoCConfig()
        self.params = timing or DataOpTimingParams()
        self._arena: AcceleratorArena | None = None

    def assign_arena(self, arena: AcceleratorArena) -> None:
        self._arena = arena

    # -- clear ------------------------------------------------------------------

    def clear(self, adt_addr: int, obj_addr: int) -> DataOpStats:
        """C++ Clear(): drop presence for every field.

        With arena-owned internals (Section 4.3), clearing presence is
        sufficient -- the objects are reclaimed by the arena reset, which
        is exactly how the paper proposes addressing destructor cost.
        """
        adt = AdtView(self.memory, adt_addr)
        stats = DataOpStats("clear",
                            cycles=self.params.dispatch_overhead)
        words = max(1, -(-adt.span // 64)) if adt.span else 1
        for word in range(words):
            self.memory.write_u64(obj_addr + adt.hasbits_offset + word * 8,
                                  0)
        stats.cycles += words  # posted writes, one word per cycle
        return stats

    # -- copy --------------------------------------------------------------------

    def copy(self, adt_addr: int, src_addr: int,
             dest_addr: int) -> DataOpStats:
        """C++ CopyFrom() into a caller-provided destination object."""
        stats = DataOpStats("copy",
                            cycles=self.params.dispatch_overhead)
        arena_before = self._require_arena().bytes_used
        self._copy_message(AdtView(self.memory, adt_addr), src_addr,
                           dest_addr, stats)
        stats.arena_bytes = self._require_arena().bytes_used - arena_before
        return stats

    def _require_arena(self) -> AcceleratorArena:
        if self._arena is None:
            raise RuntimeError("no arena assigned to the data-ops unit")
        return self._arena

    def _present_numbers(self, adt: AdtView, obj_addr: int,
                         stats: DataOpStats) -> list[int]:
        if adt.span == 0:
            return []
        words = max(1, -(-adt.span // 64))
        stats.cycles += words  # hasbits stream, one word per cycle
        numbers = []
        for word_index in range(words):
            word = self.memory.read_u64(
                obj_addr + adt.hasbits_offset + word_index * 8)
            base = adt.min_field_number + word_index * 64
            bit = 0
            while word:
                if word & 1:
                    numbers.append(base + bit)
                word >>= 1
                bit += 1
        return numbers

    def _copy_string(self, string_addr: int, stats: DataOpStats) -> int:
        arena = self._require_arena()
        view = read_string_object(self.memory, string_addr)
        addr = arena.allocate(STRING_OBJECT_BYTES, 8)
        stats.cycles += self.params.alloc
        if view.size <= SSO_CAPACITY:
            self.memory.write_u64(addr, addr + 16)
            self.memory.write_u64(addr + 8, view.size)
            self.memory.write(addr + 16, view.payload.ljust(16, b"\x00"))
            stats.cycles += 2
        else:
            data_ptr = arena.allocate(view.size, 8)
            self.memory.write(data_ptr, view.payload)
            self.memory.write_u64(addr, data_ptr)
            self.memory.write_u64(addr + 8, view.size)
            self.memory.write_u64(addr + 16, view.size)
            self.memory.write_u64(addr + 24, 0)
            stats.cycles += 2 + self.config.memory.beats(view.size)
        stats.bytes_copied += view.size
        return addr

    def _copy_repeated(self, entry: AdtEntry, header_addr: int,
                       stats: DataOpStats) -> int:
        arena = self._require_arena()
        data_addr = self.memory.read_u64(header_addr)
        count = self.memory.read_u64(header_addr + 8)
        width = _element_width(entry)
        new_header = arena.allocate(REPEATED_HEADER_BYTES, 8)
        new_data = arena.allocate(max(count * width, 1), 8)
        self.memory.write_u64(new_header, new_data)
        self.memory.write_u64(new_header + 8, count)
        self.memory.write_u64(new_header + 16, count)
        stats.cycles += 2 * self.params.alloc
        ft = entry.field_type
        assert ft is not None
        if ft in (FieldType.STRING, FieldType.BYTES):
            for index in range(count):
                child = self.memory.read_u64(data_addr + index * width)
                self.memory.write_u64(new_data + index * width,
                                      self._copy_string(child, stats))
        elif ft is FieldType.MESSAGE:
            sub_adt = AdtView(self.memory, entry.sub_adt_ptr)
            for index in range(count):
                child = self.memory.read_u64(data_addr + index * width)
                clone = self._alloc_child(sub_adt, stats)
                self._copy_message(sub_adt, child, clone, stats)
                self.memory.write_u64(new_data + index * width, clone)
        else:
            payload = self.memory.read(data_addr, count * width)
            self.memory.write(new_data, payload)
            stats.cycles += self.config.memory.beats(count * width)
            stats.bytes_copied += count * width
        return new_header

    def _alloc_child(self, sub_adt: AdtView, stats: DataOpStats) -> int:
        arena = self._require_arena()
        child = arena.allocate(sub_adt.object_size, 8)
        self.memory.fill(child, sub_adt.object_size, 0)
        self.memory.write_u64(child, sub_adt.default_vptr)
        stats.cycles += self.params.alloc
        return child

    def _copy_message(self, adt: AdtView, src_addr: int, dest_addr: int,
                      stats: DataOpStats) -> None:
        # Destination starts from a default instance: clear hasbits first.
        words = max(1, -(-adt.span // 64)) if adt.span else 1
        for word in range(words):
            self.memory.write_u64(
                dest_addr + adt.hasbits_offset + word * 8, 0)
        for number in self._present_numbers(adt, src_addr, stats):
            entry = adt.entry(number)
            if entry is None or not entry.defined:
                continue
            stats.cycles += self.params.per_field
            stats.fields_processed += 1
            self._copy_field(adt, entry, number, src_addr, dest_addr,
                             stats)
            self._set_hasbit(adt, dest_addr, number)

    def _copy_field(self, adt: AdtView, entry: AdtEntry, number: int,
                    src_addr: int, dest_addr: int,
                    stats: DataOpStats) -> None:
        src_slot = src_addr + entry.field_offset
        dest_slot = dest_addr + entry.field_offset
        ft = entry.field_type
        assert ft is not None
        if entry.repeated:
            header = self.memory.read_u64(src_slot)
            self.memory.write_u64(
                dest_slot, self._copy_repeated(entry, header, stats))
            return
        if ft in (FieldType.STRING, FieldType.BYTES):
            self.memory.write_u64(
                dest_slot,
                self._copy_string(self.memory.read_u64(src_slot), stats))
            return
        if ft is FieldType.MESSAGE:
            sub_adt = AdtView(self.memory, entry.sub_adt_ptr)
            child = self._alloc_child(sub_adt, stats)
            stats.submessages += 1
            self._copy_message(sub_adt, self.memory.read_u64(src_slot),
                               child, stats)
            stats.cycles += self.params.submsg_enter
            self.memory.write_u64(dest_slot, child)
            return
        width = CPP_SCALAR_BYTES[ft]
        self.memory.write(dest_slot, self.memory.read(src_slot, width))
        stats.cycles += self.params.scalar_copy
        stats.bytes_copied += width

    def _set_hasbit(self, adt: AdtView, obj_addr: int,
                    number: int) -> None:
        bit = number - adt.min_field_number
        addr = obj_addr + adt.hasbits_offset + bit // 64 * 8
        self.memory.write_u64(addr,
                              self.memory.read_u64(addr) | 1 << bit % 64)

    # -- merge --------------------------------------------------------------------

    def merge(self, adt_addr: int, src_addr: int,
              dest_addr: int) -> DataOpStats:
        """C++ MergeFrom(src) into dest."""
        stats = DataOpStats("merge",
                            cycles=self.params.dispatch_overhead)
        arena_before = self._require_arena().bytes_used
        self._merge_message(AdtView(self.memory, adt_addr), src_addr,
                            dest_addr, stats)
        stats.arena_bytes = self._require_arena().bytes_used - arena_before
        return stats

    def _merge_message(self, adt: AdtView, src_addr: int, dest_addr: int,
                       stats: DataOpStats) -> None:
        for number in self._present_numbers(adt, src_addr, stats):
            entry = adt.entry(number)
            if entry is None or not entry.defined:
                continue
            stats.cycles += self.params.per_field
            stats.fields_processed += 1
            dest_slot = dest_addr + entry.field_offset
            dest_has = self._has_bit(adt, dest_addr, number)
            ft = entry.field_type
            assert ft is not None
            if entry.repeated:
                self._merge_repeated(entry, src_addr + entry.field_offset,
                                     dest_slot, dest_has, stats)
            elif ft is FieldType.MESSAGE:
                sub_adt = AdtView(self.memory, entry.sub_adt_ptr)
                src_child = self.memory.read_u64(
                    src_addr + entry.field_offset)
                if dest_has:
                    self._merge_message(sub_adt, src_child,
                                        self.memory.read_u64(dest_slot),
                                        stats)
                else:
                    child = self._alloc_child(sub_adt, stats)
                    self._copy_message(sub_adt, src_child, child, stats)
                    self.memory.write_u64(dest_slot, child)
                stats.submessages += 1
                stats.cycles += self.params.submsg_enter
            else:
                # Singular scalar/string: source overwrites destination.
                self._copy_field(adt, entry, number, src_addr, dest_addr,
                                 stats)
            if entry.oneof_group:
                word, mask = adt.oneof_mask(entry.oneof_group)
                addr = dest_addr + adt.hasbits_offset + word * 8
                self.memory.write_u64(
                    addr, self.memory.read_u64(addr) & ~mask)
            self._set_hasbit(adt, dest_addr, number)

    def _merge_repeated(self, entry: AdtEntry, src_slot: int,
                        dest_slot: int, dest_has: bool,
                        stats: DataOpStats) -> None:
        src_header = self.memory.read_u64(src_slot)
        if not dest_has or self.memory.read_u64(dest_slot) == 0:
            self.memory.write_u64(
                dest_slot, self._copy_repeated(entry, src_header, stats))
            return
        arena = self._require_arena()
        dest_header = self.memory.read_u64(dest_slot)
        width = _element_width(entry)
        src_data = self.memory.read_u64(src_header)
        src_count = self.memory.read_u64(src_header + 8)
        dest_data = self.memory.read_u64(dest_header)
        dest_count = self.memory.read_u64(dest_header + 8)
        total = src_count + dest_count
        new_data = arena.allocate(max(total * width, 1), 8)
        self.memory.write(new_data,
                          self.memory.read(dest_data, dest_count * width))
        stats.cycles += (self.params.alloc
                         + self.config.memory.beats(dest_count * width))
        ft = entry.field_type
        assert ft is not None
        if ft in (FieldType.STRING, FieldType.BYTES):
            for index in range(src_count):
                child = self.memory.read_u64(src_data + index * width)
                self.memory.write_u64(
                    new_data + (dest_count + index) * width,
                    self._copy_string(child, stats))
        elif ft is FieldType.MESSAGE:
            sub_adt = AdtView(self.memory, entry.sub_adt_ptr)
            for index in range(src_count):
                child = self.memory.read_u64(src_data + index * width)
                clone = self._alloc_child(sub_adt, stats)
                self._copy_message(sub_adt, child, clone, stats)
                self.memory.write_u64(
                    new_data + (dest_count + index) * width, clone)
        else:
            payload = self.memory.read(src_data, src_count * width)
            self.memory.write(new_data + dest_count * width, payload)
            stats.cycles += self.config.memory.beats(src_count * width)
            stats.bytes_copied += src_count * width
        self.memory.write_u64(dest_header, new_data)
        self.memory.write_u64(dest_header + 8, total)
        self.memory.write_u64(dest_header + 16, total)

    def _has_bit(self, adt: AdtView, obj_addr: int, number: int) -> bool:
        bit = number - adt.min_field_number
        word = self.memory.read_u64(
            obj_addr + adt.hasbits_offset + bit // 64 * 8)
        return bool(word >> bit % 64 & 1)
