"""Quantitative comparison against prior work's programming model
(Sections 3.7 and 6: Optimus Prime [36]).

Optimus Prime programs its transformation accelerator with dynamically
constructed *per-message-instance* schema tables: every generated field
setter and clear method additionally appends/maintains a table entry
(the paper conservatively counts 64 bits written per present field), so
the accelerator can later walk just the present fields.

The paper's design instead uses one static per-*type* ADT plus the
existing per-instance hasbits bit field made sparse: nothing extra on
the setter path, but the serializer frontend reads one bit per defined
field number in [min, max].

Break-even (Section 3.7): per-instance tables win only when the
field-number usage *density* drops below 1/64 -- and Figure 7 shows at
least 92% of fleet messages sit above that.  This module prices both
schemes for a message population and reproduces the conclusion.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fleet.distributions import DENSITY_HISTOGRAM
from repro.proto.message import Message

#: Bits prior work writes per present field (paper's conservative figure).
PER_INSTANCE_TABLE_BITS_PER_FIELD = 64

#: Bits our design reads per defined field number in the span.
SPARSE_HASBIT_BITS_PER_NUMBER = 1


@dataclass(frozen=True)
class ProgrammingCost:
    """Accelerator-programming overhead for one message instance."""

    setter_path_bits_written: int   # on the CPU's critical path
    accel_bits_read: int            # by the accelerator frontend

    @property
    def total_bits(self) -> int:
        return self.setter_path_bits_written + self.accel_bits_read


def per_instance_table_cost(present_fields: int) -> ProgrammingCost:
    """Optimus-Prime-style: one table entry written per present field
    (by instrumented setters), then read back by the accelerator."""
    bits = present_fields * PER_INSTANCE_TABLE_BITS_PER_FIELD
    return ProgrammingCost(setter_path_bits_written=bits,
                           accel_bits_read=bits)


def per_type_adt_cost(field_number_span: int) -> ProgrammingCost:
    """This paper's scheme: ADTs are static (written once at program
    load, amortised to zero per instance); the frontend reads one
    hasbit per defined field number in the span."""
    return ProgrammingCost(
        setter_path_bits_written=0,
        accel_bits_read=field_number_span * SPARSE_HASBIT_BITS_PER_NUMBER)


def adt_wins(present_fields: int, field_number_span: int) -> bool:
    """True when the per-type scheme moves fewer per-instance bits."""
    ours = per_type_adt_cost(field_number_span)
    theirs = per_instance_table_cost(present_fields)
    return ours.total_bits < theirs.total_bits


def break_even_density() -> float:
    """Density above which the ADT scheme wins: span bits < 64 x present
    bits (x2 for the prior work's write+read)  =>  density > 1/128; the
    paper quotes the conservative single-sided 1/64 comparison."""
    return 1 / (PER_INSTANCE_TABLE_BITS_PER_FIELD
                * SPARSE_HASBIT_BITS_PER_NUMBER)


def fleet_share_favouring_adts(double_counted: bool = False) -> float:
    """Fraction of fleet messages whose density favours per-type ADTs.

    With ``double_counted`` the prior work is charged for both the
    setter write and the accelerator read; the paper's headline uses the
    conservative single-sided comparison (the "0.00" density bucket is
    exactly the sub-1/64 population)."""
    threshold = break_even_density() / (2 if double_counted else 1)
    below = DENSITY_HISTOGRAM[0.00] if threshold >= 1 / 128 else 0.0
    if not double_counted:
        return 1.0 - DENSITY_HISTOGRAM[0.00]
    return 1.0 - below / 2  # half the sub-1/64 bucket sits above 1/128


def message_cost_comparison(message: Message) -> dict[str, int]:
    """Price both schemes for one concrete message instance."""
    present = len(message.present_field_numbers())
    span = message.descriptor.field_number_span
    ours = per_type_adt_cost(span)
    theirs = per_instance_table_cost(present)
    return {
        "present_fields": present,
        "field_number_span": span,
        "adt_bits": ours.total_bits,
        "per_instance_bits": theirs.total_bits,
        "setter_path_bits_saved": theirs.setter_path_bits_written,
    }
