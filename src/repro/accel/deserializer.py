"""The deserializer unit (Section 4.4, Figure 9).

Receives a pointer to a serialized protobuf and populates a C++ object
image of the message's type in simulated memory.  The top-level object is
caller-allocated (compatibility with standard protobuf APIs); every
internal object -- sub-messages, strings, repeated-field buffers -- is
allocated by the accelerator in its assigned arena (Section 4.3).

The field-handler control is the paper's state machine: ``parseKey`` (one
cycle, combinational varint decode over the memloader window), ``typeInfo``
(block for the ADT entry), then per-type value states: final scalar writes,
string allocation/copy, repeated-field handling with tagged open-allocation
regions, and sub-message handling with a hardware metadata stack.

Cycle accounting policy (documented per-constant in
:class:`DeserTimingParams`): the FSM processes at most one state per cycle;
bulk copies drain the 16 B/cycle memloader window; ADT reads hit a small
on-chip entry cache (misses pay a dependent-access round trip); writes are
posted through the memory interface wrappers and stay off the critical path
unless bandwidth-bound (string copies charge their write beats, overlapped
with reads on the independent write channel).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.accel import tiers
from repro.accel.adt import AdtEntry, AdtView
from repro.accel.memloader import Memloader
from repro.accel.utf8_unit import Utf8ValidationUnit
from repro.accel.varint_unit import CombinationalVarintUnit
from repro.faults.plan import FaultSite
from repro.memory.arena import AcceleratorArena
from repro.memory.layout import SSO_CAPACITY, STRING_OBJECT_BYTES
from repro.memory.memspace import SimMemory
from repro.proto.errors import (
    AccelDecodeFault,
    AccelFault,
    DecodeError,
    WatchdogAbort,
)
from repro.proto.types import CPP_SCALAR_BYTES, FieldType, WireType
from repro.proto.varint import decode_signed
from repro.soc.config import SoCConfig
from repro.soc.tlb import Tlb

_REPEATED_HEADER_BYTES = 24


@dataclass
class DeserTimingParams:
    """Per-state cycle costs of the deserializer FSM.

    These are the behavioral model's stand-ins for RTL pipeline stages; the
    ablation benchmarks vary them to quantify each design choice.
    """

    parse_key: float = 1.0          # combinational key decode + dispatch
    typeinfo_hit: float = 1.0       # ADT entry present in the entry cache
    scalar_write: float = 1.0       # final write state, posted store
    string_setup: float = 2.0       # length decode + arena alloc + header
    repeated_open: float = 1.0      # open a tagged allocation region
    repeated_close: float = 1.0     # close-out: write final length
    submsg_setup: float = 3.0       # header decode + alloc + parent pointer
    skip_field: float = 1.0         # unknown-field skip (plus beats if long)
    message_finish: float = 1.0     # pop metadata stack / signal completion
    #: Fixed per-operation overhead: two RoCC instructions reaching the
    #: command router, control handoff into the field handler, and
    #: top-level hasbits initialisation.
    dispatch_overhead: float = 12.0
    #: Size of the on-chip ADT entry cache (entries of 16 B).
    adt_cache_entries: int = 64
    #: Varints decoded per cycle in packed repeated fields.  The base
    #: design's combinational unit handles one varint per cycle
    #: (Section 4.4.4); a wider speculative decoder is an ablation.
    packed_varints_per_cycle: float = 1.0


@dataclass
class DeserStats:
    """Outcome of one deserialization operation."""

    cycles: float = 0.0
    wire_bytes: int = 0
    fields_parsed: int = 0
    unknown_fields_skipped: int = 0
    submessages: int = 0
    strings: int = 0
    repeated_elements: int = 0
    arena_bytes: int = 0
    adt_cache_hits: int = 0
    adt_cache_misses: int = 0
    max_stack_depth: int = 0
    stack_spills: int = 0
    tlb_penalty_cycles: float = 0.0
    #: Attach-point cost (RoCC dispatch or PCIe queue-pair work) charged
    #: by the transport, NOT included in ``cycles`` -- the unit's own
    #: cycle count is transport-independent (docs/MODEL.md).
    transport_cycles: float = 0.0
    # Fault-recovery accounting (all zero on the fault-free path).
    faults_injected: int = 0
    fault_retries: int = 0
    cpu_fallbacks: int = 0
    wasted_accel_cycles: float = 0.0
    recovery_backoff_cycles: float = 0.0
    fallback_cpu_cycles: float = 0.0

    def merge(self, other: "DeserStats") -> None:
        """Accumulate another operation's stats into this one (batching)."""
        for name in (
                "cycles", "wire_bytes", "fields_parsed",
                "unknown_fields_skipped", "submessages", "strings",
                "repeated_elements", "arena_bytes", "adt_cache_hits",
                "adt_cache_misses", "stack_spills", "tlb_penalty_cycles",
                "transport_cycles",
                "faults_injected", "fault_retries", "cpu_fallbacks",
                "wasted_accel_cycles", "recovery_backoff_cycles",
                "fallback_cpu_cycles"):
            setattr(self, name, getattr(self, name) + getattr(other, name))
        self.max_stack_depth = max(self.max_stack_depth,
                                   other.max_stack_depth)


@dataclass
class _OpenRepeated:
    """A tagged open-allocation region for an unpacked repeated field."""

    field_number: int
    entry: AdtEntry
    header_addr: int
    data_addr: int
    element_width: int
    count: int = 0
    capacity: int = 0


@dataclass
class _Frame:
    """Message-level metadata kept on the hardware stack (Section 4.4.9)."""

    adt: AdtView
    obj_addr: int
    end_consumed: int  # memloader.consumed value at which this frame ends
    open_repeated: _OpenRepeated | None = None


class _AdtCache:
    """Small on-chip cache of ADT entry/header lines (LRU)."""

    def __init__(self, entries: int):
        self.entries = entries
        self._lines: OrderedDict[int, bytes] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def flush(self) -> None:
        """Invalidate every cached line (hit/miss counters survive)."""
        self._lines.clear()

    def lookup(self, line_addr: int) -> bool:
        """Touch ``line_addr``; returns True on hit."""
        if line_addr in self._lines:
            self._lines.move_to_end(line_addr)
            self.hits += 1
            return True
        self.misses += 1
        if len(self._lines) >= self.entries:
            self._lines.popitem(last=False)
        self._lines[line_addr] = b""
        return False


class DeserializerUnit:
    """Behavioral model of the deserializer unit."""

    def __init__(self, memory: SimMemory, config: SoCConfig | None = None,
                 timing: DeserTimingParams | None = None):
        self.memory = memory
        self.config = config or SoCConfig()
        self.params = timing or DeserTimingParams()
        self.varint_unit = CombinationalVarintUnit()
        self.utf8_unit = Utf8ValidationUnit()
        self._arena: AcceleratorArena | None = None
        self._adt_cache = _AdtCache(self.params.adt_cache_entries)
        self._tlb = Tlb(self.config.tlb_entries, self.config.ptw_cycles)
        self.faults = None
        #: Optional per-operation cycle-budget watchdog (an object with
        #: ``budget_cycles`` and ``aborts``; see repro.serve.watchdog).
        self.watchdog = None
        #: "codegen" | "batch" | "interp": whether to use
        #: schema-specialized kernels when a binding is installed
        #: (repro.accel.codegen; "batch" additionally lets the driver's
        #: BatchEngine vectorize whole batches, repro.accel.batchgen).
        self.fast_path = "codegen"
        #: KernelBinding installed by the driver; None runs interpreted.
        self.codegen = None

    # -- RoCC-visible operations ------------------------------------------------

    def assign_arena(self, arena: AcceleratorArena) -> None:
        """Model of ``deser_assign_arena`` (Section 4.3)."""
        self._arena = arena

    def attach_faults(self, injector) -> None:
        """Wire a FaultInjector through this unit and its sub-units."""
        self.faults = injector
        self.varint_unit.faults = injector
        self.utf8_unit.fault_injector = injector
        self._tlb.faults = injector

    def deserialize(self, adt_addr: int, dest_addr: int, src_addr: int,
                    src_len: int, hide_startup: bool = False) -> DeserStats:
        """Model of one ``deser_info`` + ``do_proto_deser`` pair.

        ``adt_addr``/``dest_addr`` arrive via ``deser_info``;
        ``src_addr``/``src_len`` (and the min field number, which we read
        from the ADT header the instruction also encodes) via
        ``do_proto_deser``.

        ``hide_startup`` models batched operation (Section 4.4.1): when the
        next ``do_proto_deser`` is already queued at the command router,
        the memloader prefetches its input stream while the field handler
        drains the current message, hiding the stream-open latency.
        """
        if self._arena is None:
            raise RuntimeError(
                "no accelerator arena assigned; issue deser_assign_arena")
        if (self.codegen is not None and self.faults is None
                and self.fast_path in ("codegen", "batch")):
            # Specialized straight-line kernel: bit-identical cycles and
            # errors, host wall-clock only.  With faults attached the
            # interpretive FSM below runs instead so every named fault
            # site still fires.  The "batch" tier shares this scalar
            # path for its anchors and per-message fallbacks.
            kernel = self.codegen.kernel_for(adt_addr)
            if kernel is not None:
                tiers.note("deser", "codegen")
                return kernel(dest_addr, src_addr, src_len, hide_startup)
        tiers.note("deser", "interp")
        stats = DeserStats(wire_bytes=src_len)
        if self.faults is not None:
            # Each call is one hardware attempt; bind its stats so any
            # fault fired during it carries an accurate cycle stamp.
            self.faults.begin_attempt(stats)
        stats.cycles += self.params.dispatch_overhead
        try:
            stats.tlb_penalty_cycles += self._tlb.translate_range(
                src_addr, max(src_len, 1))
            loader = Memloader(self.memory, self.config.memory, src_addr,
                               src_len, faults=self.faults)
            if not hide_startup:
                stats.cycles += loader.startup_cycles
            top = _Frame(adt=AdtView(self.memory, adt_addr),
                         obj_addr=dest_addr, end_consumed=src_len)
            self._init_hasbits(top)
            stack: list[_Frame] = [top]
            stats.max_stack_depth = 1
            arena_before = self._arena.bytes_used
            while stack:
                frame = stack[-1]
                if loader.consumed >= frame.end_consumed:
                    if loader.consumed > frame.end_consumed:
                        raise DecodeError(
                            "sub-message parsing overran length",
                            offset=loader.consumed)
                    self._close_open_repeated(frame, stats)
                    stats.cycles += self.params.message_finish
                    stack.pop()
                    if len(stack) >= self.config.context_stack_depth:
                        stats.cycles += self.config.stack_spill_cycles
                        stats.stack_spills += 1
                    continue
                if self.faults is not None:
                    self.faults.poll(FaultSite.DESER_ABORT)
                    try:
                        self.faults.poll(FaultSite.DESER_HANG)
                    except AccelFault as hang:
                        # The FSM stops progressing here and spins; the
                        # watchdog's budget bounds the damage.
                        raise self._watchdog_fire(FaultSite.DESER_HANG,
                                                  stats, hang) from hang
                if (self.watchdog is not None
                        and stats.cycles >= self.watchdog.budget_cycles):
                    raise self._watchdog_fire(FaultSite.DESER_HANG, stats,
                                              None)
                self._handle_field(loader, stack, stats)
                stats.max_stack_depth = max(stats.max_stack_depth,
                                            len(stack))
            if loader.remaining:
                raise DecodeError("trailing bytes after top-level message",
                                  offset=loader.consumed)
        except AccelFault:
            raise
        except DecodeError as error:
            # Boundary wrap: every genuine wire-format violation leaves the
            # unit as a structured fault (site + cycle stamp) while staying
            # a DecodeError for existing callers.  Injected faults above
            # are already structured and pass through untouched.
            raise AccelDecodeFault.wrap(error, site="deserializer",
                                        cycle=stats.cycles) from error
        stats.arena_bytes = self._arena.bytes_used - arena_before
        stats.cycles += stats.tlb_penalty_cycles
        stats.adt_cache_hits = self._adt_cache.hits
        stats.adt_cache_misses = self._adt_cache.misses
        return stats

    def _watchdog_fire(self, site: FaultSite, stats,
                       hang: AccelFault | None) -> AccelFault:
        """Build the abort for a hung (or runaway) FSM.

        An injected hang spins without progress until the watchdog's
        per-operation budget expires, so the abort is stamped with the
        full budget; an organic overrun is stamped with its own count.
        Without a watchdog an injected hang degenerates to an abort at
        the fault site (the simulation cannot spin forever).
        """
        if self.watchdog is None:
            assert hang is not None
            return hang
        self.watchdog.aborts += 1
        cycle = max(float(stats.cycles), self.watchdog.budget_cycles)
        kind = "hung" if hang is not None else "runaway"
        return WatchdogAbort(
            f"watchdog aborted {kind} FSM at {site.value} "
            f"(budget {self.watchdog.budget_cycles:.0f} cycles)",
            site=site.value, cycle=cycle, transient=False,
            injected=hang is not None)

    # -- FSM states ---------------------------------------------------------------

    def _handle_field(self, loader: Memloader, stack: list[_Frame],
                      stats: DeserStats) -> None:
        frame = stack[-1]
        # parseKey state: combinational decode over the 10-byte window.
        key, key_len = self.varint_unit.decode(loader.peek())
        loader.consume(key_len)
        stats.cycles += self.params.parse_key
        field_number = key >> 3
        try:
            wire_type = WireType(key & 7)
        except ValueError:
            raise DecodeError(f"invalid wire type {key & 7}") from None
        if field_number < 1:
            raise DecodeError(f"invalid field number {field_number}")
        # typeInfo state: block for the ADT entry.
        entry = self._load_entry(frame.adt, field_number, stats)
        if entry is None or not entry.defined:
            self._skip_unknown(loader, wire_type, stats)
            stats.unknown_fields_skipped += 1
            return
        stats.fields_parsed += 1
        # Hasbits writer runs in parallel with the value states.  For a
        # oneof member it first clears the group's sibling bits using the
        # header's group mask (one extra RMW, still off the critical
        # path).
        if entry.oneof_group:
            word, mask = frame.adt.oneof_mask(entry.oneof_group)
            addr = frame.obj_addr + frame.adt.hasbits_offset + word * 8
            self.memory.write_u64(addr,
                                  self.memory.read_u64(addr) & ~mask)
        self._set_hasbit(frame, field_number)
        if entry.repeated:
            if (wire_type is WireType.LENGTH_DELIMITED
                    and entry.field_type not in (FieldType.STRING,
                                                 FieldType.BYTES,
                                                 FieldType.MESSAGE)):
                self._handle_packed(loader, frame, field_number, entry,
                                    stats)
            else:
                self._handle_repeated_element(loader, frame, field_number,
                                              entry, wire_type, stats, stack)
            return
        if frame.open_repeated is not None:
            self._close_open_repeated(frame, stats)
        if entry.is_message:
            if wire_type is not WireType.LENGTH_DELIMITED:
                raise DecodeError(
                    f"wire type {wire_type.name} does not match a "
                    "sub-message field")
            self._enter_submessage(loader, frame, entry, stats, stack,
                                   dest_slot=frame.obj_addr
                                   + entry.field_offset,
                                   field_number=field_number)
            return
        if entry.field_type in (FieldType.STRING, FieldType.BYTES):
            if wire_type is not WireType.LENGTH_DELIMITED:
                raise DecodeError(
                    f"wire type {wire_type.name} does not match "
                    f"{entry.field_type.value}")
            addr = self._handle_string(loader, stats, entry)
            self.memory.write_u64(frame.obj_addr + entry.field_offset, addr)
            return
        self._write_scalar(loader, frame.obj_addr + entry.field_offset,
                           entry, wire_type, stats)

    def _load_entry(self, adt: AdtView, field_number: int,
                    stats: DeserStats) -> AdtEntry | None:
        if self.faults is not None:
            # Parity check over the fetched ADT entry line.
            self.faults.poll(FaultSite.ADT_ENTRY)
        entry_addr = adt.entry_address(field_number)
        if entry_addr is None:
            # Out-of-range numbers never had an entry; the range check is
            # combinational against the header's min/max.
            stats.cycles += self.params.typeinfo_hit
            return None
        if self._adt_cache.lookup(entry_addr):
            stats.cycles += self.params.typeinfo_hit
        else:
            stats.cycles += self.config.memory.dependent_access_cycles(16)
        return adt.entry(field_number)

    def _skip_unknown(self, loader: Memloader, wire_type: WireType,
                      stats: DeserStats) -> None:
        stats.cycles += self.params.skip_field
        if wire_type is WireType.VARINT:
            _, length = self.varint_unit.decode(loader.peek())
            loader.consume(length)
        elif wire_type is WireType.FIXED64:
            loader.consume(8)
        elif wire_type is WireType.FIXED32:
            loader.consume(4)
        elif wire_type is WireType.LENGTH_DELIMITED:
            length, consumed = self.varint_unit.decode(loader.peek())
            loader.consume(consumed)
            _, cycles = loader.consume_bulk(length)
            stats.cycles += cycles
        else:
            raise DecodeError(
                f"cannot skip deprecated wire type {wire_type.name}")

    # -- scalar handling -------------------------------------------------------

    def _decode_scalar_bytes(self, loader: Memloader, entry: AdtEntry,
                             wire_type: WireType,
                             stats: DeserStats) -> bytes:
        """Decode one scalar element from the stream into its C++ bytes."""
        ft = entry.field_type
        assert ft is not None
        width = CPP_SCALAR_BYTES[ft]
        if ft in (FieldType.DOUBLE, FieldType.FIXED64, FieldType.SFIXED64,
                  FieldType.FLOAT, FieldType.FIXED32, FieldType.SFIXED32):
            expected = (WireType.FIXED64 if width == 8
                        else WireType.FIXED32)
            if wire_type is not expected:
                raise DecodeError(
                    f"wire type {wire_type.name} does not match "
                    f"{ft.value}")
            raw = loader.peek(width)
            if len(raw) < width:
                raise DecodeError("truncated fixed-width value")
            loader.consume(width)
            return raw
        if wire_type is not WireType.VARINT:
            raise DecodeError(
                f"wire type {wire_type.name} does not match {ft.value}")
        payload, length = self.varint_unit.decode(loader.peek())
        loader.consume(length)
        if entry.zigzag:
            value = self.varint_unit.zigzag_decode(payload)
            value = decode_signed(value & (1 << width * 8) - 1,
                                  bits=width * 8)
            payload = value & (1 << width * 8) - 1
        elif ft is FieldType.BOOL:
            payload = 1 if payload else 0
        return (payload & (1 << width * 8) - 1).to_bytes(width, "little")

    def _write_scalar(self, loader: Memloader, slot_addr: int,
                      entry: AdtEntry, wire_type: WireType,
                      stats: DeserStats) -> None:
        data = self._decode_scalar_bytes(loader, entry, wire_type, stats)
        self.memory.write(slot_addr, data)
        stats.cycles += self.params.scalar_write

    # -- strings ------------------------------------------------------------------

    def _handle_string(self, loader: Memloader, stats: DeserStats,
                       entry: AdtEntry | None = None) -> int:
        """String allocation and copy states (Section 4.4.7).

        Builds a libstdc++-compatible std::string in the arena and returns
        its address.  proto3 string fields are UTF-8 validated in-stream
        (Section 7), overlapped with the copy.
        """
        assert self._arena is not None
        length, consumed = self.varint_unit.decode(loader.peek())
        loader.consume(consumed)
        if length > loader.remaining:
            # Bounds-check against the input stream *before* allocating,
            # so a corrupt length faults cleanly instead of draining the
            # arena.
            raise DecodeError("truncated string/bytes payload")
        stats.cycles += self.params.string_setup
        addr = self._arena.allocate(STRING_OBJECT_BYTES, 8)
        if length <= SSO_CAPACITY:
            data_ptr = addr + 16
            payload, copy_cycles = loader.consume_bulk(length)
            self.memory.write_u64(addr, data_ptr)
            self.memory.write_u64(addr + 8, length)
            self.memory.write(addr + 16, bytes(payload).ljust(16, b"\x00"))
        else:
            data_ptr = self._arena.allocate(length, 8)
            payload, copy_cycles = loader.consume_bulk(length)
            self.memory.write(data_ptr, payload)
            self.memory.write_u64(addr, data_ptr)
            self.memory.write_u64(addr + 8, length)
            self.memory.write_u64(addr + 16, length)
            self.memory.write_u64(addr + 24, 0)
        stats.cycles += copy_cycles
        stats.strings += 1
        if entry is not None and entry.utf8_validate:
            self.utf8_unit.validate(payload)
        return addr

    # -- repeated fields -----------------------------------------------------------

    def _open_repeated(self, frame: _Frame, field_number: int,
                       entry: AdtEntry, stats: DeserStats) -> _OpenRepeated:
        """Open a tagged allocation region (Section 4.4.8)."""
        assert self._arena is not None
        if frame.open_repeated is not None:
            if frame.open_repeated.field_number == field_number:
                return frame.open_repeated
            self._close_open_repeated(frame, stats)
        ft = entry.field_type
        assert ft is not None
        if ft in (FieldType.STRING, FieldType.BYTES, FieldType.MESSAGE):
            width = 8
        else:
            width = CPP_SCALAR_BYTES[ft]
        header = self._arena.allocate(_REPEATED_HEADER_BYTES, 8)
        initial = 8
        data = self._arena.allocate(initial * width, 8)
        region = _OpenRepeated(field_number=field_number, entry=entry,
                               header_addr=header, data_addr=data,
                               element_width=width, capacity=initial)
        frame.open_repeated = region
        stats.cycles += self.params.repeated_open
        # Write the parent's field slot immediately so duplicate openings
        # (same field number appearing again after a close) find the header.
        self.memory.write_u64(frame.obj_addr + entry.field_offset, header)
        return region

    def _grow_repeated(self, region: _OpenRepeated,
                       stats: DeserStats) -> None:
        """Double the open region's backing array (amortised memcpy)."""
        assert self._arena is not None
        new_capacity = region.capacity * 2
        new_data = self._arena.allocate(new_capacity * region.element_width,
                                        8)
        old_bytes = region.count * region.element_width
        self.memory.write(new_data, self.memory.read(region.data_addr,
                                                     old_bytes))
        stats.cycles += self.config.memory.beats(old_bytes)
        region.data_addr = new_data
        region.capacity = new_capacity

    def _append_element_bytes(self, region: _OpenRepeated, data: bytes,
                              stats: DeserStats) -> None:
        if region.count >= region.capacity:
            self._grow_repeated(region, stats)
        self.memory.write(
            region.data_addr + region.count * region.element_width, data)
        region.count += 1
        stats.repeated_elements += 1

    def _close_open_repeated(self, frame: _Frame,
                             stats: DeserStats) -> None:
        region = frame.open_repeated
        if region is None:
            return
        self.memory.write_u64(region.header_addr, region.data_addr)
        self.memory.write_u64(region.header_addr + 8, region.count)
        self.memory.write_u64(region.header_addr + 16, region.capacity)
        stats.cycles += self.params.repeated_close
        frame.open_repeated = None

    def _reopen_if_closed(self, frame: _Frame, field_number: int,
                          entry: AdtEntry, stats: DeserStats) -> _OpenRepeated:
        """Find or create the open region for an unpacked repeated field.

        If the field's region was previously closed (elements of another
        field intervened), the close-out wrote a valid header; reopening
        re-reads it and continues appending (growing if needed).
        """
        region = frame.open_repeated
        if region is not None and region.field_number == field_number:
            return region
        if region is not None:
            self._close_open_repeated(frame, stats)
        slot = frame.obj_addr + entry.field_offset
        header = self.memory.read_u64(slot)
        word, bit = self._hasbit_position(frame, field_number)
        already_present = bool(
            self.memory.read_u64(frame.obj_addr
                                 + frame.adt.hasbits_offset + word * 8)
            >> bit & 1)
        if header != 0 and already_present:
            ft = entry.field_type
            assert ft is not None
            if ft in (FieldType.STRING, FieldType.BYTES, FieldType.MESSAGE):
                width = 8
            else:
                width = CPP_SCALAR_BYTES[ft]
            region = _OpenRepeated(
                field_number=field_number, entry=entry, header_addr=header,
                data_addr=self.memory.read_u64(header),
                element_width=width,
                count=self.memory.read_u64(header + 8),
                capacity=self.memory.read_u64(header + 16))
            stats.cycles += self.config.memory.dependent_access_cycles(24)
            frame.open_repeated = region
            return region
        return self._open_repeated(frame, field_number, entry, stats)

    def _handle_repeated_element(self, loader: Memloader, frame: _Frame,
                                 field_number: int, entry: AdtEntry,
                                 wire_type: WireType, stats: DeserStats,
                                 stack: list[_Frame]) -> None:
        region = self._reopen_if_closed(frame, field_number, entry, stats)
        ft = entry.field_type
        assert ft is not None
        if ft in (FieldType.STRING, FieldType.BYTES, FieldType.MESSAGE) \
                and wire_type is not WireType.LENGTH_DELIMITED:
            raise DecodeError(
                f"wire type {wire_type.name} does not match {ft.value}")
        if ft in (FieldType.STRING, FieldType.BYTES):
            addr = self._handle_string(loader, stats, entry)
            self._append_element_bytes(region, addr.to_bytes(8, "little"),
                                       stats)
            return
        if ft is FieldType.MESSAGE:
            if region.count >= region.capacity:
                self._grow_repeated(region, stats)
            slot = region.data_addr + region.count * region.element_width
            region.count += 1
            stats.repeated_elements += 1
            self._enter_submessage(loader, frame, entry, stats, stack,
                                   dest_slot=slot,
                                   field_number=field_number)
            return
        data = self._decode_scalar_bytes(loader, entry, wire_type, stats)
        stats.cycles += self.params.scalar_write
        self._append_element_bytes(region, data, stats)

    def _handle_packed(self, loader: Memloader, frame: _Frame,
                       field_number: int, entry: AdtEntry,
                       stats: DeserStats) -> None:
        """Packed repeated fields: length-delimited, handled like strings
        but element-decoded (Section 4.4.8)."""
        region = self._reopen_if_closed(frame, field_number, entry, stats)
        length, consumed = self.varint_unit.decode(loader.peek())
        loader.consume(consumed)
        stats.cycles += 1
        end = loader.consumed + length
        if end > loader.consumed + loader.remaining:
            raise DecodeError("truncated packed field")
        ft = entry.field_type
        assert ft is not None
        element_wire = (
            WireType.VARINT if CPP_SCALAR_BYTES.get(ft) is not None
            and ft not in (FieldType.FLOAT, FieldType.DOUBLE,
                           FieldType.FIXED32, FieldType.FIXED64,
                           FieldType.SFIXED32, FieldType.SFIXED64)
            else (WireType.FIXED32
                  if CPP_SCALAR_BYTES[ft] == 4 else WireType.FIXED64))
        while loader.consumed < end:
            data = self._decode_scalar_bytes(loader, entry, element_wire,
                                             stats)
            # Packed fixed-width elements stream at the full window rate;
            # varints decode one per cycle through the combinational unit.
            if element_wire is WireType.VARINT:
                stats.cycles += 1 / self.params.packed_varints_per_cycle
            else:
                stats.cycles += len(data) / self.config.memory.bytes_per_beat
            self._append_element_bytes(region, data, stats)
        if loader.consumed != end:
            raise DecodeError("packed payload overran its length")

    # -- sub-messages ---------------------------------------------------------------

    def _enter_submessage(self, loader: Memloader, frame: _Frame,
                          entry: AdtEntry, stats: DeserStats,
                          stack: list[_Frame], dest_slot: int,
                          field_number: int) -> None:
        """Sub-message handling states (Section 4.4.9).

        Decodes the length header, allocates/initialises the child object
        from the sub-type's ADT header, links it into the parent, and
        pushes new message-level metadata onto the stack.
        """
        assert self._arena is not None
        length, consumed = self.varint_unit.decode(loader.peek())
        loader.consume(consumed)
        if length > loader.remaining:
            raise DecodeError("truncated sub-message")
        sub_adt = AdtView(self.memory, entry.sub_adt_ptr)
        if self._adt_cache.lookup(entry.sub_adt_ptr):
            stats.cycles += self.params.typeinfo_hit
        else:
            stats.cycles += self.config.memory.dependent_access_cycles(32)
        existing = self.memory.read_u64(dest_slot)
        reuse = False
        if existing != 0 and not entry.repeated:
            word, bit = self._hasbit_position(frame, field_number)
            reuse = bool(self.memory.read_u64(
                frame.obj_addr + frame.adt.hasbits_offset + word * 8)
                >> bit & 1)
        if reuse:
            # proto2 merge semantics: a second occurrence of a singular
            # sub-message field keeps populating the existing object.
            child_addr = existing
            stats.cycles += self.params.submsg_setup
        else:
            object_size = sub_adt.object_size
            child_addr = self._arena.allocate(object_size, 8)
            self.memory.fill(child_addr, object_size, 0)
            self.memory.write_u64(child_addr, sub_adt.default_vptr)
            self.memory.write_u64(dest_slot, child_addr)
            stats.cycles += self.params.submsg_setup
            stats.arena_bytes += object_size
        stats.submessages += 1
        if len(stack) >= self.config.context_stack_depth:
            stats.cycles += self.config.stack_spill_cycles
            stats.stack_spills += 1
        child = _Frame(adt=sub_adt, obj_addr=child_addr,
                       end_consumed=loader.consumed + length)
        if child.end_consumed > loader.consumed + loader.remaining:
            raise DecodeError("truncated sub-message")
        stack.append(child)

    # -- hasbits ---------------------------------------------------------------------

    def _hasbit_position(self, frame: _Frame,
                         field_number: int) -> tuple[int, int]:
        bit = field_number - frame.adt.min_field_number
        return bit // 64, bit % 64

    def _init_hasbits(self, frame: _Frame) -> None:
        """Zero the destination object's hasbits words before parsing."""
        adt = frame.adt
        span = adt.span
        words = max(1, -(-span // 64))
        for word in range(words):
            self.memory.write_u64(
                frame.obj_addr + adt.hasbits_offset + word * 8, 0)

    def _set_hasbit(self, frame: _Frame, field_number: int) -> None:
        """The hasbits-writer unit: posted read-modify-write (off the
        critical path; Figure 9 shows it as a parallel block)."""
        word, bit = self._hasbit_position(frame, field_number)
        addr = frame.obj_addr + frame.adt.hasbits_offset + word * 8
        self.memory.write_u64(addr, self.memory.read_u64(addr) | 1 << bit)
