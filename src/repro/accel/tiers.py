"""Process-wide execution-tier run counters.

Every deserialize/serialize call lands on exactly one tier: the
interpretive FSM (``interp``), a schema-specialized scalar kernel
(``codegen``), the vectorized batch engine (``batch-vector``), or the
batch engine's per-message scalar fallback (``batch-scalar``, counted
*in addition to* the scalar tier that actually ran the message).  The
units and the batch engine bump these so tier selection is observable
through :func:`repro.accel.perf.render_codegen_line`; nothing in the
cycle model reads them.

This module is deliberately dependency-free -- the FSM units cannot
import codegen/batchgen (layering), yet all three need to report here.
"""

from __future__ import annotations

_OPS = ("deser", "ser")
_TIERS = ("interp", "codegen", "batch-vector", "batch-scalar")

_runs: dict[str, dict[str, int]] = {
    op: {tier: 0 for tier in _TIERS} for op in _OPS
}


def note(op: str, tier: str, count: int = 1) -> None:
    """Record ``count`` messages processed by ``tier`` for ``op``."""
    _runs[op][tier] += count


def counters() -> dict[str, dict[str, int]]:
    """A snapshot copy of the per-op, per-tier run counts."""
    return {op: dict(tiers) for op, tiers in _runs.items()}


def reset() -> None:
    """Zero every counter (tests and fresh perf collections)."""
    for tiers in _runs.values():
        for tier in tiers:
            tiers[tier] = 0
