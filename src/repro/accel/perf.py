"""Accelerator performance-counter aggregation.

Real deployments watch hardware counters; our units each keep their own
(varint decodes, ADT cache hits, UTF-8 validations, TLB hit rates,
memory traffic).  :class:`PerfReport` gathers them from a
:class:`~repro.accel.driver.ProtoAccelerator` into one snapshot with a
printable rendering -- the observability surface an SRE would consult
when a service adopts the offload.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PerfReport:
    """A point-in-time snapshot of the device's counters."""

    rocc_instructions: int
    varint_decodes: int
    varint_encodes: int
    zigzag_ops: int
    utf8_strings_validated: int
    utf8_faults: int
    deser_tlb_hit_rate: float
    ser_tlb_hit_rate: float
    adt_cache_hits: int
    adt_cache_misses: int
    deser_arena_bytes_used: int
    ser_outputs: int
    memory_read_bytes: int
    memory_written_bytes: int
    # Fault/recovery counters (zero on a fault-free device).
    faults_injected: int = 0
    fault_interrupts: int = 0
    transient_retries: int = 0
    cpu_fallbacks: int = 0
    wasted_accel_cycles: float = 0.0
    fallback_cpu_cycles: float = 0.0
    bus_stalls: int = 0
    watchdog_aborts: int = 0

    @property
    def adt_cache_hit_rate(self) -> float:
        total = self.adt_cache_hits + self.adt_cache_misses
        return self.adt_cache_hits / total if total else 1.0

    def render(self) -> str:
        """Human-readable counter dump."""
        rows = (
            ("RoCC instructions issued", f"{self.rocc_instructions:,}"),
            ("varint decodes / encodes",
             f"{self.varint_decodes:,} / {self.varint_encodes:,}"),
            ("zig-zag operations", f"{self.zigzag_ops:,}"),
            ("UTF-8 strings validated / faults",
             f"{self.utf8_strings_validated:,} / {self.utf8_faults:,}"),
            ("ADT entry cache hit rate",
             f"{self.adt_cache_hit_rate:.1%}"),
            ("deser / ser TLB hit rate",
             f"{self.deser_tlb_hit_rate:.1%} / "
             f"{self.ser_tlb_hit_rate:.1%}"),
            ("deser arena bytes in use",
             f"{self.deser_arena_bytes_used:,}"),
            ("serialized outputs in arena", f"{self.ser_outputs:,}"),
            ("simulated memory read / written",
             f"{self.memory_read_bytes:,} / "
             f"{self.memory_written_bytes:,} B"),
            ("faults injected / interrupts raised",
             f"{self.faults_injected:,} / {self.fault_interrupts:,}"),
            ("transient retries / CPU fallbacks",
             f"{self.transient_retries:,} / {self.cpu_fallbacks:,}"),
            ("wasted accel / fallback CPU cycles",
             f"{self.wasted_accel_cycles:,.0f} / "
             f"{self.fallback_cpu_cycles:,.0f}"),
            ("bus stalls observed", f"{self.bus_stalls:,}"),
            ("watchdog aborts (hung FSMs)", f"{self.watchdog_aborts:,}"),
        )
        width = max(len(label) for label, _ in rows)
        return "\n".join(f"{label:<{width}}  {value}"
                         for label, value in rows)


def memoization_counters() -> dict[str, tuple[int, int]]:
    """Hit/miss pairs for every host-side memoisation cache.

    Covers the software-CPU per-operation cycle caches, the accelerator
    whole-batch caches, and the specialized-kernel code cache.  (ADT
    template hits are per-builder; see
    :attr:`repro.accel.adt.AdtBuilder.template_hits`.)
    """
    from repro.accel import codegen, driver
    from repro.cpu import model
    code_hits, code_misses, _, _ = codegen.cache_counters()
    return {
        "cpu-deser": (model.DESER_CYCLE_CACHE.hits,
                      model.DESER_CYCLE_CACHE.misses),
        "cpu-ser": (model.SER_CYCLE_CACHE.hits,
                    model.SER_CYCLE_CACHE.misses),
        "accel-deser": (driver.DESER_BATCH_CACHE.hits,
                        driver.DESER_BATCH_CACHE.misses),
        "accel-ser": (driver.SER_BATCH_CACHE.hits,
                      driver.SER_BATCH_CACHE.misses),
        "codegen": (code_hits, code_misses),
    }


def render_memoization_line() -> str:
    """One perf-counter line summarising memoisation-cache hit rates."""
    parts = []
    for name, (hits, misses) in memoization_counters().items():
        total = hits + misses
        rate = f"{hits / total:.1%}" if total else "n/a"
        parts.append(f"{name} {rate} ({hits:,}/{total:,})")
    return "memo caches: " + "  ".join(parts)


def tier_counters() -> dict[str, dict[str, int]]:
    """Per-op execution-tier run counts (see :mod:`repro.accel.tiers`).

    ``batch-vector`` counts messages replayed by the vectorized batch
    engine; ``batch-scalar`` counts the engine's per-message fallbacks
    (each of which *also* lands on interp or codegen)."""
    from repro.accel import tiers
    return tiers.counters()


def render_codegen_line() -> str:
    """The execution-tier observability surface: code-cache hit rate
    plus a per-tier run table (one line per op)."""
    from repro.accel import codegen
    hits, misses, entries, capacity = codegen.cache_counters()
    total = hits + misses
    rate = f"{hits / total:.1%}" if total else "n/a"
    state = "on" if codegen.codegen_enabled() else "off"
    lines = [f"codegen cache: {rate} ({hits:,}/{total:,})  "
             f"entries {entries}/{capacity}  [{state}]"]
    for op, runs in tier_counters().items():
        scalar = runs["interp"] + runs["codegen"]
        direct = scalar - runs["batch-scalar"]
        processed = direct + runs["batch-vector"] + runs["batch-scalar"]
        vector_rate = (f"{runs['batch-vector'] / processed:.1%}"
                       if processed else "n/a")
        lines.append(
            f"{op} tiers: interp {runs['interp']:,}  "
            f"codegen {runs['codegen']:,}  "
            f"batch-vector {runs['batch-vector']:,}  "
            f"batch-scalar-fallback {runs['batch-scalar']:,}  "
            f"(vectorized {vector_rate})")
    return "\n".join(lines)


def collect(accel) -> PerfReport:
    """Snapshot every counter on ``accel`` (a ProtoAccelerator)."""
    deser = accel.deserializer
    ser = accel.serializer
    return PerfReport(
        rocc_instructions=accel.rocc.instructions_issued,
        varint_decodes=(deser.varint_unit.decodes
                        + ser.varint_unit.decodes),
        varint_encodes=(deser.varint_unit.encodes
                        + ser.varint_unit.encodes),
        zigzag_ops=(deser.varint_unit.zigzag_ops
                    + ser.varint_unit.zigzag_ops),
        utf8_strings_validated=deser.utf8_unit.strings_validated,
        utf8_faults=deser.utf8_unit.faults,
        deser_tlb_hit_rate=deser._tlb.stats.hit_rate,
        ser_tlb_hit_rate=ser._tlb.stats.hit_rate,
        adt_cache_hits=deser._adt_cache.hits,
        adt_cache_misses=deser._adt_cache.misses,
        deser_arena_bytes_used=accel._deser_arena.bytes_used,
        ser_outputs=accel._ser_arena.output_count,
        memory_read_bytes=accel.memory.stats.read_bytes,
        memory_written_bytes=accel.memory.stats.written_bytes,
        faults_injected=(accel.faults.injected
                         if accel.faults is not None else 0),
        fault_interrupts=accel.rocc.faults_raised,
        transient_retries=accel.fault_stats.transient_retries,
        cpu_fallbacks=accel.fault_stats.cpu_fallbacks,
        wasted_accel_cycles=accel.fault_stats.wasted_accel_cycles,
        fallback_cpu_cycles=accel.fault_stats.fallback_cpu_cycles,
        bus_stalls=accel.bus.stalls,
        watchdog_aborts=(accel.watchdog.aborts
                         if accel.watchdog is not None else 0),
    )
