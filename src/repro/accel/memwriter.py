"""The memwriter unit (Section 4.5.5).

Consumes sequenced serialized field data and writes it to the output
buffer from high to low addresses.  It maintains a stack of the lengths of
the (sub-)messages currently being handled: when an end-of-message op
(field number zero) arrives, the memwriter knows the sub-message's total
serialized length -- all of its fields have already been written -- and
injects the sub-message's key and length varint.  For a top-level message
it records the output pointer in the arena's pointer table instead.
"""

from __future__ import annotations

from repro.memory.arena import SerializerArena
from repro.memory.timing import MemoryTimingModel


class Memwriter:
    """High-to-low output writer with a message-length stack."""

    def __init__(self, arena: SerializerArena, timing: MemoryTimingModel):
        self.arena = arena
        self.timing = timing
        self.cycles = 0.0
        self.bytes_written = 0
        self._cursor_stack: list[int] = []

    def push(self, data: bytes) -> int:
        """Write ``data`` immediately below the current cursor.

        Costs one cycle per 16 B beat (posted writes on the independent
        write channel), minimum one cycle per op for the sequencing slot.
        """
        if not data:
            return self.arena.cursor
        addr = self.arena.push_bytes(data)
        self.cycles += max(1.0, float(self.timing.beats(len(data))))
        self.bytes_written += len(data)
        return addr

    def begin_message(self) -> None:
        """A handle-field-op arrived with a new, deeper depth."""
        self._cursor_stack.append(self.arena.cursor)
        self.cycles += 1.0

    def end_message(self) -> int:
        """End-of-message op (field number zero): pop and return the
        completed (sub-)message's serialized length in bytes."""
        if not self._cursor_stack:
            raise RuntimeError("end_message without matching begin_message")
        start_cursor = self._cursor_stack.pop()
        self.cycles += 1.0
        return start_cursor - self.arena.cursor

    @property
    def depth(self) -> int:
        return len(self._cursor_stack)

    def finish_top_level(self) -> tuple[int, int]:
        """Record the completed top-level message in the pointer table."""
        self.cycles += 1.0
        return self.arena.finish_message()
