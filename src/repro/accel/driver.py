"""User-facing accelerator device API (the modified protobuf library).

Ties together the RoCC command interface, ADT generation, accelerator
arenas, and the deserializer/serializer units, exposing the workflow an
application linked against the paper's modified protobuf library follows:

1. at load time, ADTs are generated for every message type;
2. the program assigns accelerator arenas
   (``{ser,deser}_assign_arena``);
3. per operation, it issues ``deser_info`` + ``do_proto_deser`` (or
   ``ser_info`` + ``do_proto_ser``), possibly batched, then a
   ``block_for_*_completion`` fence;
4. deserialized objects are read through normal accessors; serialized
   outputs are fetched from the arena's pointer table.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass
from typing import Optional

from repro.accel.adt import AdtBuilder
from repro.accel.dataops import DataOpStats, MessageOpsUnit
from repro.accel.deserializer import DeserializerUnit, DeserStats
from repro.accel.serializer import SerializerUnit, SerStats
from repro.faults import FaultInjector, FaultPlan, FaultSite, RecoveryPolicy
from repro.memory.arena import (
    AcceleratorArena,
    ArenaExhausted,
    SerializerArena,
)
from repro.memory.layout import (
    LayoutCache,
    read_message_image,
    write_message_image,
)
from repro.memory.memspace import SimMemory
from repro.proto.descriptor import MessageDescriptor
from repro.proto.errors import AccelFault
from repro.proto.message import Message
from repro.accel.watchdog import FsmWatchdog
from repro.soc.bus import SystemBus
from repro.soc.config import SoCConfig
from repro.soc.rocc import RoccFunct, RoccInstruction
from repro.soc.transport import build_transport


def buffers_digest(buffers) -> bytes:
    """Order-sensitive digest of a batch of wire buffers."""
    hasher = hashlib.blake2b(digest_size=16)
    for data in buffers:
        hasher.update(len(data).to_bytes(8, "little"))
        hasher.update(data)
    return hasher.digest()


class BatchCycleCache:
    """Batch-level cycle memoisation for accelerator operations.

    Within one operation the accelerator's cycle count depends on unit
    state that carries across the batch (warm ADT entry cache, TLB
    contents, arena fill), so individual operations are *not* memoised.
    A whole batch, however, is deterministic: a fresh accelerator given
    the same (SoC config, message type, ordered wire buffers) always
    produces the same aggregate stats.  This cache replays those verified
    aggregates, keyed by config fingerprint + descriptor structural
    fingerprint + buffer digest.  See docs/PERF.md.
    """

    def __init__(self, name: str):
        self.name = name
        self.enabled = True
        self.hits = 0
        self.misses = 0
        self._entries: dict[tuple, tuple] = {}

    @staticmethod
    def config_fingerprint(config: SoCConfig) -> str:
        # Dataclass repr renders every knob (including the nested memory
        # timing model) deterministically.
        return repr(config)

    def make_key(self, config: SoCConfig, descriptor_fp: str,
                 digest: bytes) -> tuple:
        return (self.config_fingerprint(config), descriptor_fp, digest)

    def lookup(self, key: tuple) -> Optional[tuple]:
        if not self.enabled:
            return None
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        stats, extra = entry
        return dataclasses.replace(stats), extra

    def store(self, key: tuple, stats, extra=None) -> None:
        if self.enabled:
            self._entries[key] = (dataclasses.replace(stats), extra)

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


#: Process-wide accelerator batch cycle caches.
DESER_BATCH_CACHE = BatchCycleCache("accel-deser")
SER_BATCH_CACHE = BatchCycleCache("accel-ser")


def set_batch_cache_enabled(enabled: bool) -> None:
    """Toggle the accelerator batch cycle caches."""
    DESER_BATCH_CACHE.enabled = enabled
    SER_BATCH_CACHE.enabled = enabled


@dataclass
class DeserResult:
    """A completed accelerator deserialization."""

    dest_addr: int
    stats: DeserStats


@dataclass
class SerResult:
    """A completed accelerator serialization."""

    data: bytes
    stats: SerStats


@dataclass
class FaultRecoveryStats:
    """Device-lifetime fault/recovery counters (what an SRE dashboards)."""

    faults_injected: int = 0
    transient_retries: int = 0
    cpu_fallbacks: int = 0
    wasted_accel_cycles: float = 0.0
    backoff_cycles: float = 0.0
    fallback_cpu_cycles: float = 0.0


class ProtoAccelerator:
    """The accelerated SoC's protobuf offload device."""

    def __init__(self, memory: SimMemory | None = None,
                 config: SoCConfig | None = None,
                 deser_arena_bytes: int = 8 << 20,
                 ser_arena_bytes: int = 8 << 20,
                 faults: FaultPlan | FaultInjector | None = None,
                 recovery: RecoveryPolicy | None = None,
                 watchdog: FsmWatchdog | None = None,
                 fast_path: str = "codegen"):
        if memory is None:
            # Size the simulated DRAM to hold both arenas plus generous
            # heap headroom for object images and wire buffers.
            memory = SimMemory(size=max(
                64 << 20, 2 * (deser_arena_bytes + ser_arena_bytes)
                + (32 << 20)))
        self.memory = memory
        self.config = config or SoCConfig()
        self.layouts = LayoutCache()
        self.adts = AdtBuilder(self.memory, self.layouts)
        # The attach point: probe the configured transport and fall
        # back to RoCC (recording why) if its hardware is absent --
        # the HardwareManager pattern (repro.soc.transport).
        self.transport, self.transport_resolution = build_transport(
            self.config)
        #: Attach-point cycles not attributable to a single offloaded
        #: operation: device setup (arena assignment), Section 7 data
        #: ops, and submissions abandoned by unrecovered faults.
        self.transport_overhead_cycles = 0.0
        self.bus = SystemBus(bytes_per_beat=self.config.memory.bytes_per_beat)
        self.deserializer = DeserializerUnit(self.memory, self.config)
        self.serializer = SerializerUnit(self.memory, self.config)
        self.dataops = MessageOpsUnit(self.memory, self.config)
        self._deser_arena = AcceleratorArena(self.memory, deser_arena_bytes)
        self._ser_arena = SerializerArena(self.memory, ser_arena_bytes)
        self.transport.begin_batch()
        self._assign_arenas()
        self.transport.end_batch()
        self.transport_overhead_cycles += self.transport.take_cycles()
        self.recovery = recovery or RecoveryPolicy()
        # The watchdog is armed on every device: it is a pure comparator
        # on the fault-free path (bit-identical cycles; see
        # tests/serve/test_regression.py) and the only thing bounding a
        # hung FSM when hang faults are planned.
        self.watchdog = watchdog or FsmWatchdog()
        self.deserializer.watchdog = self.watchdog
        self.serializer.watchdog = self.watchdog
        if isinstance(faults, FaultPlan):
            faults = FaultInjector(faults) if faults.enabled() else None
        self.faults = faults
        if self.faults is not None:
            self.deserializer.attach_faults(self.faults)
            self.serializer.attach_faults(self.faults)
        self.fault_stats = FaultRecoveryStats()
        self._fallback_cpu = None  # lazily built boom_cpu()
        # Schema-specialized codegen kernels (repro.accel.codegen): same
        # modeled cycles, much less host work.  With a fault plan armed
        # the bindings are never installed -- every operation runs the
        # interpretive FSMs so all named fault sites still fire.
        if fast_path not in ("codegen", "batch", "interp"):
            raise ValueError(f"unknown fast_path {fast_path!r}; "
                             "expected 'codegen', 'batch', or 'interp'")
        self.fast_path = fast_path
        self.deserializer.fast_path = fast_path
        self.serializer.fast_path = fast_path
        if fast_path in ("codegen", "batch") and self.faults is None:
            from repro.accel import codegen
            self.deserializer.codegen = codegen.bind_deserializer(
                self.deserializer, self.adts.descriptor_for)
            self.serializer.codegen = codegen.bind_serializer(
                self.serializer, self.adts.descriptor_for)
        # Vectorized batch engine (repro.accel.batchgen): whole-batch
        # numpy execution over the *_batch entry points, with the same
        # scalar kernels as the anchor/fallback path.  Same armed-fault
        # bypass as the codegen bindings.
        self.batch = None
        if fast_path == "batch" and self.faults is None:
            from repro.accel import batchgen
            self.batch = batchgen.BatchEngine(self)

    def _assign_arenas(self) -> None:
        self.transport.issue(RoccInstruction(
            RoccFunct.DESER_ASSIGN_ARENA, self._deser_arena.base,
            self._deser_arena.size))
        self.deserializer.assign_arena(self._deser_arena)
        self.transport.issue(RoccInstruction(
            RoccFunct.SER_ASSIGN_ARENA, self._ser_arena.data_base,
            self._ser_arena.data_size))
        self.serializer.assign_arena(self._ser_arena)
        # The Section 7 data ops allocate from the deserializer's arena
        # (copy/merge build objects the same way deserialization does).
        self.dataops.assign_arena(self._deser_arena)

    # -- transport plumbing -----------------------------------------------------

    @property
    def rocc(self):
        """Legacy alias for the attach point.

        Tests and tooling predate the :class:`AccelTransport` seam and
        reach command-stream observability (``log``,
        ``instructions_issued``, ``faults_raised``) through ``.rocc``;
        both transports expose that surface.
        """
        return self.transport

    def _fault_kind(self, base: str) -> str:
        """Operation kind announced to the fault injector.  The RoCC
        kinds are the historical ``"deser"``/``"ser"`` (seeded site
        draws stay bit-identical); PCIe operations can additionally
        fault at the transport's own submission sites."""
        return base if self.transport.name == "rocc" else f"pcie.{base}"

    def _submit_deser(self, adt_addr: int, dest_addr: int, src_addr: int,
                      src_len: int) -> None:
        """Issue the ``deser_info``/``do_proto_deser`` pair (one
        descriptor over PCIe).  Transport fault sites are polled by the
        *driver*, before anything is issued: a lost doorbell or failed
        payload DMA is detected at submission, so a faulted submit
        leaves no in-flight work behind and is simply re-run."""
        if self.faults is not None:
            self.faults.poll(FaultSite.PCIE_DMA)
            self.faults.poll(FaultSite.PCIE_DOORBELL)
        self.transport.issue(RoccInstruction(RoccFunct.DESER_INFO, adt_addr,
                                             dest_addr))
        self.transport.issue(RoccInstruction(RoccFunct.DO_PROTO_DESER,
                                             src_addr, src_len))

    def _submit_ser(self, descriptor: MessageDescriptor, adt_addr: int,
                    obj_addr: int) -> None:
        """Issue the ``ser_info``/``do_proto_ser`` pair (one descriptor
        over PCIe); same submission-time fault polls as the deser twin."""
        if self.faults is not None:
            self.faults.poll(FaultSite.PCIE_DMA)
            self.faults.poll(FaultSite.PCIE_DOORBELL)
        self.transport.issue(RoccInstruction(
            RoccFunct.SER_INFO,
            self.layouts.layout(descriptor).hasbits_offset,
            descriptor.max_field_number << 32 | descriptor.min_field_number))
        self.transport.issue(RoccInstruction(RoccFunct.DO_PROTO_SER,
                                             adt_addr, obj_addr))

    def _drain_abandoned(self, error: BaseException) -> None:
        """Attribute transport cycles left behind by a failed operation.

        Over PCIe the abandoned submission's ring/doorbell/DMA work is
        real link-side cost the caller must see before failing over, so
        it rides on the fault's ``charged_cycles`` when the error
        carries one.  On RoCC the dispatch cycles stay on the
        device-lifetime overhead ledger, exactly where they lived
        before the transport seam existed (keeping the serving layer's
        failed-attempt charge -- and its latency bounds -- unchanged).
        """
        leaked = self.transport.take_cycles()
        if not leaked:
            return
        if (self.transport.name != "rocc"
                and getattr(error, "charged_cycles", None) is not None):
            error.charged_cycles += leaked
        else:
            self.transport_overhead_cycles += leaked

    # -- program-load setup -----------------------------------------------------

    def register_types(self, descriptors: list[MessageDescriptor]) -> None:
        """Generate ADTs for ``descriptors`` and all reachable sub-types
        (what the modified protoc emits into the binary)."""
        self.adts.build(descriptors)

    def register_schema(self, schema) -> None:
        """Convenience: register every message type in a parsed schema."""
        self.register_types(schema.messages())

    # -- deserialization ----------------------------------------------------------

    #: Cycles for the arena-exhausted interrupt round trip: fault, kernel
    #: handler, software assigning a fresh arena, and operation restart.
    ARENA_RENEWAL_CYCLES = 2500.0

    def _renew_deser_arena(self) -> None:
        """Assign a fresh deserializer arena (the interrupt handler's
        job when the accelerator faults on exhaustion -- Section 4.3)."""
        self._deser_arena = AcceleratorArena(self.memory,
                                             self._deser_arena.size)
        self.transport.issue(RoccInstruction(
            RoccFunct.DESER_ASSIGN_ARENA, self._deser_arena.base,
            self._deser_arena.size))
        self.deserializer.assign_arena(self._deser_arena)
        self.dataops.assign_arena(self._deser_arena)

    def deserialize(self, descriptor: MessageDescriptor,
                    wire_bytes: bytes,
                    hide_startup: bool = False,
                    auto_renew_arena: bool = False) -> DeserResult:
        """Offload one deserialization; returns the populated object's
        address plus cycle statistics.

        The wire buffer is placed in simulated memory and the top-level
        destination object is allocated on the software heap (by "user
        code", per Section 4.4), both zero-initialised.
        """
        adt_addr = self.adts.adt_address(descriptor)
        layout = self.layouts.layout(descriptor)
        src_addr = self.memory.allocate(max(len(wire_bytes), 1), 16)
        if wire_bytes:
            self.memory.write(src_addr, wire_bytes)
        dest_addr = self.memory.allocate(layout.object_size, 8)
        self.memory.fill(dest_addr, layout.object_size, 0)
        self.memory.write_u64(dest_addr, layout.vptr)
        transport = self.transport
        transport.begin_batch()
        try:
            if self.faults is not None:
                result = self._deserialize_recovering(
                    descriptor, wire_bytes, adt_addr, dest_addr, src_addr,
                    hide_startup, auto_renew_arena)
            else:
                self._submit_deser(adt_addr, dest_addr, src_addr,
                                   len(wire_bytes))
                stats = self._deser_attempt(
                    descriptor, adt_addr, dest_addr, src_addr,
                    len(wire_bytes), hide_startup, auto_renew_arena)
                transport.retire_deser()
                result = DeserResult(dest_addr=dest_addr, stats=stats)
        except BaseException as error:
            transport.end_batch()
            self._drain_abandoned(error)
            raise
        transport.end_batch()
        result.stats.transport_cycles += transport.take_cycles()
        return result

    def _deser_attempt(self, descriptor: MessageDescriptor, adt_addr: int,
                       dest_addr: int, src_addr: int, src_len: int,
                       hide_startup: bool,
                       auto_renew_arena: bool) -> DeserStats:
        """One hardware attempt, including the arena-renewal restart."""
        try:
            return self.deserializer.deserialize(
                adt_addr, dest_addr, src_addr, src_len,
                hide_startup=hide_startup)
        except ArenaExhausted:
            if not auto_renew_arena:
                raise
            # The accelerator faulted mid-operation; software installs a
            # fresh arena and restarts the deserialization from scratch
            # (partial state in the old arena is simply abandoned).
            self._renew_deser_arena()
            self._reset_dest(descriptor, dest_addr)
            stats = self.deserializer.deserialize(
                adt_addr, dest_addr, src_addr, src_len)
            stats.cycles += self.ARENA_RENEWAL_CYCLES
            return stats

    def _reset_dest(self, descriptor: MessageDescriptor,
                    dest_addr: int) -> None:
        """Re-zero the caller-allocated destination object for a restart."""
        layout = self.layouts.layout(descriptor)
        self.memory.fill(dest_addr, layout.object_size, 0)
        self.memory.write_u64(dest_addr, layout.vptr)

    def _fallback(self):
        """The host core's software library (BOOM cost model), used for
        per-message fallback after unrecoverable accelerator faults."""
        if self._fallback_cpu is None:
            from repro.cpu.boom import boom_cpu
            self._fallback_cpu = boom_cpu()
        return self._fallback_cpu

    def _note_fault(self, fault: AccelFault) -> None:
        """Bookkeeping common to every caught injected fault."""
        self.transport.record_fault(fault.site)
        self.fault_stats.faults_injected += 1
        self.fault_stats.wasted_accel_cycles += fault.cycle
        if fault.site == FaultSite.BUS_STALL.value:
            self.bus.record_stall(fault.cycle)

    def _deserialize_recovering(self, descriptor: MessageDescriptor,
                                wire_bytes: bytes, adt_addr: int,
                                dest_addr: int, src_addr: int,
                                hide_startup: bool,
                                auto_renew_arena: bool) -> DeserResult:
        """Fault-injected path: bounded retry with backoff for transient
        faults, then per-message CPU fallback (docs/FAULTS.md).

        Cycle charging: the final stats carry every wasted attempt's
        cycles (up to its fault), every backoff pause, and -- on fallback
        -- the BOOM software decode, on top of the successful attempt (or
        instead of one, for fallback).
        """
        assert self.faults is not None
        self.faults.begin_operation(self._fault_kind("deser"))
        injected = 0
        retries = 0
        wasted = 0.0
        backoff = 0.0
        submitted = False
        try:
            while True:
                try:
                    if not submitted:
                        # (Re)submission: a transport-site fault fires
                        # here, before the pair is issued, so the retry
                        # resubmits; a unit fault leaves the descriptor
                        # in flight and only the unit attempt re-runs.
                        self._submit_deser(adt_addr, dest_addr, src_addr,
                                           len(wire_bytes))
                        submitted = True
                    stats = self._deser_attempt(
                        descriptor, adt_addr, dest_addr, src_addr,
                        len(wire_bytes), hide_startup, auto_renew_arena)
                    break
                except AccelFault as fault:
                    if not fault.injected:
                        # A genuine decode error: the input really is
                        # malformed; retrying cannot help and software
                        # would reject it identically.  Propagate.
                        raise
                    injected += 1
                    wasted += fault.cycle
                    self._note_fault(fault)
                    if (fault.transient
                            and retries < self.recovery.max_retries):
                        backoff += self.recovery.backoff(retries)
                        retries += 1
                        self._reset_dest(descriptor, dest_addr)
                        continue
                    if not self.recovery.cpu_fallback:
                        self._raise_unrecovered(fault, injected, retries,
                                                wasted, backoff)
                    # Persistent fault (or retry budget exhausted):
                    # software decodes this message on the host core.
                    dest_addr, stats = self._fallback_deserialize(
                        descriptor, wire_bytes)
                    break
        finally:
            self.faults.end_operation()
        stats.faults_injected += injected
        stats.fault_retries += retries
        stats.wasted_accel_cycles += wasted
        stats.recovery_backoff_cycles += backoff
        stats.cycles += wasted + backoff
        self.fault_stats.transient_retries += retries
        self.fault_stats.backoff_cycles += backoff
        if submitted:
            self.transport.retire_deser()
        return DeserResult(dest_addr=dest_addr, stats=stats)

    def _raise_unrecovered(self, fault: AccelFault, injected: int,
                           retries: int, wasted: float,
                           backoff: float) -> None:
        """Re-raise an unrecovered fault with the recovery attempt's cost
        attached (``RecoveryPolicy.cpu_fallback=False`` mode).

        ``charged_cycles`` is everything the device burned on this
        operation -- every wasted attempt and every backoff pause -- so
        the caller (the serving layer) can charge the failed offload
        honestly before deciding between failover, host fallback, and a
        structured rejection.
        """
        self.fault_stats.transient_retries += retries
        self.fault_stats.backoff_cycles += backoff
        fault.charged_cycles = wasted + backoff
        fault.charged_faults = injected
        fault.charged_retries = retries
        raise fault

    def _fallback_deserialize(self, descriptor: MessageDescriptor,
                              wire_bytes: bytes
                              ) -> tuple[int, DeserStats]:
        """Decode one message with the software library and materialise
        the result as an object image -- bit-identical to what a healthy
        accelerator would have produced."""
        message, op = self._fallback().deserialize(descriptor,
                                                   bytes(wire_bytes))
        addr = write_message_image(self.memory, self.memory.allocate,
                                   message, self.layouts)
        stats = DeserStats(wire_bytes=len(wire_bytes))
        stats.cycles = op.cycles
        stats.cpu_fallbacks = 1
        stats.fallback_cpu_cycles = op.cycles
        self.fault_stats.cpu_fallbacks += 1
        self.fault_stats.fallback_cpu_cycles += op.cycles
        return addr, stats

    def deserialize_batch(self, descriptor: MessageDescriptor,
                          buffers: list[bytes]) -> tuple[list[int], DeserStats]:
        """Batched offload: N ``deser_info``/``do_proto_deser`` pairs then
        one ``block_for_deser_completion`` (Section 4.4.1)."""
        transport = self.transport
        transport.begin_batch()
        try:
            addresses = total = None
            if self.batch is not None:
                attempt = self.batch.deserialize_batch(descriptor, buffers)
                if attempt is not None:
                    addresses, total = attempt
            if total is None:
                total = DeserStats()
                addresses = []
                for data in buffers:
                    # Deserialization is serial through the field handler,
                    # so the stream-open latency is NOT hidden between
                    # batched operations (contrast the ablation in
                    # benchmarks/bench_ablation.py).
                    result = self.deserialize(descriptor, data)
                    addresses.append(result.dest_addr)
                    total.merge(result.stats)
            transport.block_for_deser_completion()
            total.cycles += self.config.fence_cycles
        except BaseException as error:
            transport.end_batch()
            self._drain_abandoned(error)
            raise
        transport.end_batch()
        total.transport_cycles += transport.take_cycles()
        return addresses, total

    def read_message(self, descriptor: MessageDescriptor,
                     addr: int) -> Message:
        """Read an object image back as a Message (what user-code accessors
        would observe)."""
        return read_message_image(self.memory, descriptor, addr,
                                  self.layouts)

    # -- serialization --------------------------------------------------------------

    def load_object(self, message: Message) -> int:
        """Materialise ``message`` as a C++ object image on the software
        heap (the state an application builds up before serializing)."""
        self.adts.build([message.descriptor])
        return write_message_image(self.memory, self.memory.allocate,
                                   message, self.layouts)

    def serialize(self, descriptor: MessageDescriptor,
                  obj_addr: int) -> SerResult:
        """Offload one serialization of the object image at ``obj_addr``."""
        adt_addr = self.adts.adt_address(descriptor)
        transport = self.transport
        transport.begin_batch()
        try:
            if self.faults is not None:
                result = self._serialize_recovering(descriptor, adt_addr,
                                                    obj_addr)
            else:
                self._submit_ser(descriptor, adt_addr, obj_addr)
                stats = self.serializer.serialize(adt_addr, obj_addr)
                transport.retire_ser()
                data = self._ser_arena.output(self._ser_arena.output_count - 1)
                transport.note_payload(len(data))
                result = SerResult(data=data, stats=stats)
        except BaseException as error:
            transport.end_batch()
            self._drain_abandoned(error)
            raise
        transport.end_batch()
        result.stats.transport_cycles += transport.take_cycles()
        return result

    def _serialize_recovering(self, descriptor: MessageDescriptor,
                              adt_addr: int, obj_addr: int) -> SerResult:
        """Fault-injected serialize: retry transients (rolling back the
        faulted attempt's partial arena output), fall back to the
        software serializer otherwise."""
        assert self.faults is not None
        self.faults.begin_operation(self._fault_kind("ser"))
        injected = 0
        retries = 0
        wasted = 0.0
        backoff = 0.0
        data = None
        submitted = False
        try:
            while True:
                mark = self._ser_arena.mark()
                try:
                    if not submitted:
                        self._submit_ser(descriptor, adt_addr, obj_addr)
                        submitted = True
                    stats = self.serializer.serialize(adt_addr, obj_addr)
                    data = self._ser_arena.output(
                        self._ser_arena.output_count - 1)
                    self.transport.note_payload(len(data))
                    break
                except AccelFault as fault:
                    self._ser_arena.rollback(mark)
                    if not fault.injected:
                        raise
                    injected += 1
                    wasted += fault.cycle
                    self._note_fault(fault)
                    if (fault.transient
                            and retries < self.recovery.max_retries):
                        backoff += self.recovery.backoff(retries)
                        retries += 1
                        continue
                    if not self.recovery.cpu_fallback:
                        self._raise_unrecovered(fault, injected, retries,
                                                wasted, backoff)
                    data, stats = self._fallback_serialize(descriptor,
                                                           obj_addr)
                    break
        finally:
            self.faults.end_operation()
        stats.faults_injected += injected
        stats.fault_retries += retries
        stats.wasted_accel_cycles += wasted
        stats.recovery_backoff_cycles += backoff
        stats.cycles += wasted + backoff
        self.fault_stats.transient_retries += retries
        self.fault_stats.backoff_cycles += backoff
        if submitted:
            self.transport.retire_ser()
        return SerResult(data=data, stats=stats)

    def _fallback_serialize(self, descriptor: MessageDescriptor,
                            obj_addr: int) -> tuple[bytes, SerStats]:
        """Serialize one object image with the software library; the
        output is byte-identical to the accelerator's (the suite pins
        both against the same golden wire bytes)."""
        message = read_message_image(self.memory, descriptor, obj_addr,
                                     self.layouts)
        data, op = self._fallback().serialize(message)
        stats = SerStats()
        stats.cycles = op.cycles
        stats.output_bytes = len(data)
        stats.cpu_fallbacks = 1
        stats.fallback_cpu_cycles = op.cycles
        self.fault_stats.cpu_fallbacks += 1
        self.fault_stats.fallback_cpu_cycles += op.cycles
        return data, stats

    def serialize_batch(self, descriptor: MessageDescriptor,
                        addresses: list[int]) -> tuple[list[bytes], SerStats]:
        """Batched serialization with a single completion fence."""
        transport = self.transport
        transport.begin_batch()
        try:
            outputs = total = None
            if self.batch is not None:
                attempt = self.batch.serialize_batch(descriptor, addresses)
                if attempt is not None:
                    outputs, total = attempt
            if total is None:
                total = SerStats()
                outputs = []
                for addr in addresses:
                    result = self.serialize(descriptor, addr)
                    outputs.append(result.data)
                    total.merge(result.stats)
            transport.block_for_ser_completion()
            total.cycles += self.config.fence_cycles
        except BaseException as error:
            transport.end_batch()
            self._drain_abandoned(error)
            raise
        transport.end_batch()
        total.transport_cycles += transport.take_cycles()
        return outputs, total

    # -- Section 7 extension ops ---------------------------------------------------

    def clear_message(self, descriptor: MessageDescriptor,
                      obj_addr: int) -> DataOpStats:
        """Offload C++ ``Clear()`` on the object image at ``obj_addr``."""
        adt_addr = self.adts.adt_address(descriptor)
        transport = self.transport
        transport.begin_batch()
        transport.issue(RoccInstruction(RoccFunct.DO_PROTO_CLEAR,
                                        adt_addr, obj_addr))
        try:
            return self.dataops.clear(adt_addr, obj_addr)
        finally:
            transport.end_batch()
            self.transport_overhead_cycles += transport.take_cycles()

    def copy_message(self, descriptor: MessageDescriptor,
                     src_addr: int) -> tuple[int, DataOpStats]:
        """Offload ``CopyFrom``: deep-copy into a fresh destination
        object; returns (dest_addr, stats)."""
        adt_addr = self.adts.adt_address(descriptor)
        layout = self.layouts.layout(descriptor)
        dest_addr = self.memory.allocate(layout.object_size, 8)
        self.memory.fill(dest_addr, layout.object_size, 0)
        self.memory.write_u64(dest_addr, layout.vptr)
        transport = self.transport
        transport.begin_batch()
        transport.issue(RoccInstruction(RoccFunct.DO_PROTO_COPY,
                                        src_addr, dest_addr))
        try:
            return dest_addr, self.dataops.copy(adt_addr, src_addr, dest_addr)
        finally:
            transport.end_batch()
            self.transport_overhead_cycles += transport.take_cycles()

    def merge_messages(self, descriptor: MessageDescriptor, src_addr: int,
                       dest_addr: int) -> DataOpStats:
        """Offload ``dest.MergeFrom(src)`` on two object images."""
        adt_addr = self.adts.adt_address(descriptor)
        transport = self.transport
        transport.begin_batch()
        transport.issue(RoccInstruction(RoccFunct.DO_PROTO_MERGE,
                                        src_addr, dest_addr))
        try:
            return self.dataops.merge(adt_addr, src_addr, dest_addr)
        finally:
            transport.end_batch()
            self.transport_overhead_cycles += transport.take_cycles()

    # -- maintenance ------------------------------------------------------------------

    def reset_arenas(self) -> None:
        """Reclaim both accelerator arenas (end of a request's lifetime)."""
        self._deser_arena.reset()
        self._ser_arena.reset()

    # -- pure-charging call windows ---------------------------------------------

    def begin_pure_call(self) -> int:
        """Open a *pure-charging* call window: flush both unit TLBs and
        return a heap mark for :meth:`end_pure_call`.

        Inside the window, cycle charging is a pure function of the
        operation's inputs.  Wire buffers and object images land at the
        same addresses on every call (the heap rolls back at window
        close) and PTW penalties restart from a cold TLB, so neither
        prior traffic nor allocator drift can perturb the bill.  The
        serving fabric uses this to guarantee that shard placement and
        call order never change cycles (docs/SERVING.md)."""
        self.deserializer._tlb.flush()
        self.deserializer._adt_cache.flush()
        self.serializer._tlb.flush()
        return self.memory.heap_top

    def end_pure_call(self, mark: int) -> None:
        """Close a pure-charging window: reclaim the arenas and roll
        the software heap (wire buffers, object images) back to
        ``mark``.  If an arena was renewed inside the window the heap
        is left alone -- the live arena sits above the mark."""
        self.reset_arenas()
        if (self._deser_arena.base >= mark
                or self._ser_arena.data_base >= mark):
            return
        self.memory.heap_release(mark)

    def throughput_gbps(self, payload_bytes: int, cycles: float) -> float:
        """Convert an operation's byte count and cycles to Gbit/s."""
        return self.config.gbits_per_second(payload_bytes, cycles)
