"""Sparse vs dense hasbits: the Section 3.7 / 4.2 trade-off, priced.

protoc packs hasbits densely (one bit per *defined* field, in declaration
order).  Supporting that in hardware would force the accelerator to map
field numbers to bit positions -- "a mapping table indexed by field
number, introducing an additional 32-bit read per-field" (Section 4.2).
The paper instead re-lays hasbits *sparsely*, indexed directly by
``field_number - min_field_number``, trading bit-field size (span bits
instead of defined bits) for zero-indirection access.

This module prices both layouts for a message type so the trade-off is
checkable per schema, and provides the fleet-level recommendation the
paper derives: sparse wins whenever density exceeds the mapping-read
overhead, which Figure 7 shows holds almost everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.proto.descriptor import MessageDescriptor

#: Extra bits the dense layout reads per handled field (the field-number
#: to bit-position mapping table entry, Section 4.2).
DENSE_MAPPING_BITS_PER_FIELD = 32


@dataclass(frozen=True)
class HasbitsCost:
    """Bits the serializer frontend moves per serialization of one
    message instance, for one hasbits layout."""

    layout: str
    bitfield_bits: int      # hasbits words streamed by the frontend
    mapping_bits: int       # indirection reads (dense only)

    @property
    def total_bits(self) -> int:
        return self.bitfield_bits + self.mapping_bits


def _words_bits(bits: int) -> int:
    """Bits actually streamed: whole 64-bit words."""
    return max(1, -(-bits // 64)) * 64


def sparse_cost(descriptor: MessageDescriptor) -> HasbitsCost:
    """The paper's layout: one bit per field *number* in [min, max]."""
    return HasbitsCost(
        layout="sparse",
        bitfield_bits=_words_bits(descriptor.field_number_span),
        mapping_bits=0)


def dense_cost(descriptor: MessageDescriptor,
               present_fields: int) -> HasbitsCost:
    """protoc's layout: one bit per *defined* field, plus a mapping-table
    read for every field the accelerator handles."""
    return HasbitsCost(
        layout="dense",
        bitfield_bits=_words_bits(len(descriptor.fields)),
        mapping_bits=present_fields * DENSE_MAPPING_BITS_PER_FIELD)


def sparse_wins(descriptor: MessageDescriptor,
                present_fields: int) -> bool:
    """True when the sparse layout moves no more bits than the dense one
    for a message with ``present_fields`` populated fields."""
    return (sparse_cost(descriptor).total_bits
            <= dense_cost(descriptor, present_fields).total_bits)


def break_even_present_fields(descriptor: MessageDescriptor) -> float:
    """Present-field count above which sparse wins for this type.

    Sparse streams ``span`` bits regardless; dense streams ``defined``
    bits plus 32 per present field, so the break-even is
    ``(span_bits - defined_bits) / 32``.
    """
    sparse_bits = sparse_cost(descriptor).bitfield_bits
    dense_bits = _words_bits(len(descriptor.fields))
    return max(0.0,
               (sparse_bits - dense_bits) / DENSE_MAPPING_BITS_PER_FIELD)


def compare(descriptor: MessageDescriptor,
            present_fields: int) -> dict[str, float]:
    """Both layouts' bit movement plus the break-even point."""
    sparse = sparse_cost(descriptor)
    dense = dense_cost(descriptor, present_fields)
    return {
        "sparse_bits": sparse.total_bits,
        "dense_bits": dense.total_bits,
        "break_even_present_fields": break_even_present_fields(descriptor),
        "sparse_wins": float(sparse.total_bits <= dense.total_bits),
    }
