"""The protobuf accelerator (Section 4 of the paper).

A behavioral, cycle-approximate model of the RTL design: the deserializer
unit (Figure 9) and serializer unit (Figure 10), programmed with
per-message-type Accelerator Descriptor Tables and driven by RoCC custom
instructions.  The units operate on real bytes in simulated memory -- wire
buffers in, C++ object images out (and vice versa) -- so functional
correctness is checked against the software protobuf library bit-for-bit,
while cycle accounting follows the documented datapath (single-cycle
combinational varint units, a 16 B/cycle memloader window, dependent-access
latencies for pointer chases, and context stacks for sub-messages).
"""

from repro.accel.adt import AdtBuilder, AdtView, ADT_HEADER_BYTES, ADT_ENTRY_BYTES
from repro.accel.varint_unit import CombinationalVarintUnit
from repro.accel.memloader import Memloader
from repro.accel.deserializer import DeserializerUnit, DeserStats
from repro.accel.serializer import SerializerUnit, SerStats
from repro.accel.dataops import DataOpStats, MessageOpsUnit
from repro.accel.utf8_unit import Utf8ValidationUnit
from repro.accel.driver import ProtoAccelerator
from repro.accel.asic_model import AsicModel, UnitAsicEstimate

__all__ = [
    "AdtBuilder",
    "AdtView",
    "ADT_HEADER_BYTES",
    "ADT_ENTRY_BYTES",
    "CombinationalVarintUnit",
    "Memloader",
    "DeserializerUnit",
    "DeserStats",
    "SerializerUnit",
    "SerStats",
    "ProtoAccelerator",
    "DataOpStats",
    "MessageOpsUnit",
    "Utf8ValidationUnit",
    "AsicModel",
    "UnitAsicEstimate",
]
