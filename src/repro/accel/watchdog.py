"""FSM watchdog: a per-operation cycle budget on the accelerator units.

HGum (arXiv:1801.06541) argues the host/accelerator seam needs explicit
flow control; the serving layer additionally needs *bounded* per-call
latency, which software timeouts alone cannot give when the offloaded
FSM itself wedges.  The watchdog is the hardware half of that bound: a
cycle counter armed at ``deser_info``/``ser_info`` that aborts the
deserializer field handler or serializer pipeline when one operation
exceeds ``budget_cycles``.

Two conditions trip it:

* an injected hang (``deser.hang`` / ``ser.hang`` fault sites): the FSM
  stops consuming input and spins; the abort is charged the *full*
  budget -- those cycles really were burned;
* an organic runaway: an operation whose own accounting crosses the
  budget (a misconfigured budget or a pathological input).

Either way the unit raises
:class:`~repro.proto.errors.WatchdogAbort`, a persistent
:class:`~repro.proto.errors.AccelFault`, and the driver's recovery
machinery takes over (CPU fallback, or -- under the serving layer --
failover to another tile).  With no hang injected and a sane budget the
watchdog is a pure comparator: fault-free cycle counts are bit-identical
with or without it (``tests/serve/test_regression.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field


#: Default per-operation budget: comfortably above the largest operation
#: any shipped workload performs (~3.5k cycles for a 32 KiB string copy)
#: while still bounding a hung FSM to well under a millisecond at 2 GHz.
DEFAULT_BUDGET_CYCLES = 100_000.0


@dataclass
class FsmWatchdog:
    """Per-operation cycle budget shared by one device's two units."""

    budget_cycles: float = DEFAULT_BUDGET_CYCLES
    #: Total operations this watchdog killed (device lifetime).
    aborts: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.budget_cycles <= 0:
            raise ValueError("watchdog budget must be positive")
