"""Accelerator placement study (Sections 3.4, 3.5 and 3.9).

The paper's most-cited design argument: a protobuf accelerator belongs
*near the core*, not on a PCIe-attached NIC, because

1. most ser/deser is not RPC-initiated, so NIC placement adds pointless
   data movement for storage-side work;
2. the in-memory representation is accessed with small, irregular,
   pointer-chasing reads that PCIe latency (~
   a microsecond per round trip) destroys; and
3. most messages are tiny (93% under 512 B), so per-offload overhead
   dominates at NIC distance.

This module makes the argument executable: :class:`PcieAttachedModel`
estimates what the *same* accelerator datapath would cost behind a PCIe
link, given the near-core model's measured per-operation statistics.
The crossover message size -- below which near-core wins -- falls out,
and with Figure 3's size distribution, the fraction of fleet messages
each placement wins.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accel.deserializer import DeserStats
from repro.fleet.distributions import (
    MESSAGE_SIZE_BUCKETS,
    RPC_SHARE_OF_DESER,
)
from repro.soc.config import SoCConfig


@dataclass
class PcieAttachedModel:
    """Cost model for the accelerator datapath placed across PCIe.

    Defaults follow measured PCIe Gen3 x8 behaviour (Neugebauer et al.,
    SIGCOMM'18, the paper's [34]): ~900 ns round-trip for a dependent
    read, ~6 GB/s effective DMA bandwidth, and ~1.3 us for the doorbell/
    descriptor dance that starts an offload.
    """

    #: Cycles (at the 2 GHz accelerator clock) per dependent round trip.
    round_trip_cycles: float = 1800.0
    #: Offload setup: doorbell write, descriptor fetch, completion.
    dispatch_cycles: float = 2600.0
    #: Effective DMA bandwidth in bytes per accelerator cycle (~6 GB/s
    #: at 2 GHz = 3 B/cycle).
    dma_bytes_per_cycle: float = 3.0
    config: SoCConfig | None = None

    def __post_init__(self) -> None:
        self.config = self.config or SoCConfig()

    def deserialize_cycles(self, stats: DeserStats) -> float:
        """Estimated cycles for the same deserialization done over PCIe.

        The wire buffer DMAs across once (streaming), but every
        allocation writeback and parent-pointer link lands in host
        memory, and the object graph's construction is dependent --
        sub-message entry and string allocation each expose a round
        trip.  Field writes within a message batch behind the stream.
        """
        dependent_ops = stats.submessages + stats.strings
        dma_bytes = stats.wire_bytes + stats.arena_bytes
        return (self.dispatch_cycles
                + dependent_ops * self.round_trip_cycles
                + dma_bytes / self.dma_bytes_per_cycle
                + stats.fields_parsed)  # datapath itself is not slower

    def crossover_bytes(self, near_core_cycles_per_byte: float,
                        near_core_overhead: float) -> float:
        """Message size where PCIe placement breaks even with near-core,
        for a flat-structured message (no dependent round trips)."""
        pcie_rate = 1.0 / self.dma_bytes_per_cycle
        if near_core_cycles_per_byte <= pcie_rate:
            overhead_gap = self.dispatch_cycles - near_core_overhead
            rate_gap = pcie_rate - near_core_cycles_per_byte
            return overhead_gap / rate_gap if rate_gap > 0 else float("inf")
        return 0.0


def fleet_message_share_won_by_near_core(crossover: float) -> float:
    """Fraction of fleet messages (Figure 3) below the crossover size --
    the population for which near-core placement wins outright."""
    share = 0.0
    for bucket in MESSAGE_SIZE_BUCKETS:
        if bucket.hi is not None and bucket.hi <= crossover:
            share += bucket.share
        elif bucket.contains(int(crossover)):
            # Partial credit within the straddling bucket (log-uniform).
            share += bucket.share * 0.5
    return share


def non_rpc_deser_share() -> float:
    """Deserialization cycles that never touch the NIC (Section 3.4) --
    offloading them to NIC-attached hardware *adds* data movement."""
    return 1.0 - RPC_SHARE_OF_DESER
