"""The memloader unit (Section 4.4.2).

Streams the serialized input buffer from memory and exposes a decoupled
consumer interface: a full window of up to 16 buffered bytes is always
visible (the consumer's appetite is data-dependent -- it may take 1 byte of
a bool or 16 bytes of a string), and the consumer names how many bytes to
discard at the end of each cycle.

Cycle accounting: the memloader issues pipelined sequential reads, so input
bandwidth is one 16 B beat per cycle after a single startup latency charged
when the stream opens.
"""

from __future__ import annotations

from repro.faults.plan import FaultSite
from repro.memory.memspace import SimMemory
from repro.proto.errors import DecodeError
from repro.memory.timing import MemoryTimingModel

WINDOW_BYTES = 16


class Memloader:
    """A streaming window over one serialized input buffer."""

    def __init__(self, memory: SimMemory, timing: MemoryTimingModel,
                 addr: int, length: int, faults=None):
        if length < 0:
            raise ValueError("stream length must be non-negative")
        self.memory = memory
        self.timing = timing
        self._base = addr
        self._length = length
        self._pos = 0
        #: Startup latency of opening the stream (hidden thereafter).
        self.startup_cycles = timing.average_latency if length else 0.0
        self.bytes_loaded = 0
        # The pipelined sequential prefetch: one read of the stream at
        # open, exposed thereafter as zero-copy window views (no bytes
        # allocation per cycle).
        self._raw = memory.read(addr, length) if length else b""
        self._stream = memoryview(self._raw)
        self._window: memoryview | bytes = b""
        self._window_pos = -1
        self._window_len = -1
        # Stream-open checks: ECC over the prefetched lines, the beat
        # counter against the announced length, and the bus transaction
        # itself.  Any of these can raise an AccelFault under injection.
        if faults is not None:
            faults.poll(FaultSite.BUS_STALL)
            faults.poll(FaultSite.MEMLOADER_BITFLIP)
            faults.poll(FaultSite.MEMLOADER_TRUNCATE)

    def prefetched(self) -> bytes:
        """The whole prefetched stream as one bytes object.

        Next-window prefetch for the specialized codegen kernels: the
        entire input was loaded at stream open (the same single read the
        windowed interface uses), so a kernel indexes it directly and
        never stalls refilling the 16 B window.
        """
        return self._raw

    @property
    def remaining(self) -> int:
        return self._length - self._pos

    @property
    def consumed(self) -> int:
        return self._pos

    def peek(self, nbytes: int = WINDOW_BYTES) -> memoryview | bytes:
        """Look at up to ``nbytes`` of buffered data without consuming.

        Hardware always exposes a full window; at end-of-stream the window
        simply contains fewer valid bytes.  The returned window is a
        zero-copy view over the prefetched stream, cached across repeated
        peeks at the same position.
        """
        nbytes = min(nbytes, self.remaining)
        if nbytes <= 0:
            return b""
        if self._window_pos != self._pos or self._window_len != nbytes:
            self._window = self._stream[self._pos:self._pos + nbytes]
            self._window_pos = self._pos
            self._window_len = nbytes
        return self._window

    def consume(self, nbytes: int) -> None:
        """Discard ``nbytes`` from the head of the window."""
        if nbytes < 0:
            raise ValueError("cannot consume a negative byte count")
        if nbytes > self.remaining:
            raise DecodeError(
                f"consume({nbytes}) exceeds remaining {self.remaining} "
                "(truncated input stream)")
        self._pos += nbytes
        self.bytes_loaded += nbytes

    def consume_bulk(self, nbytes: int) -> tuple[bytes, float]:
        """Consume ``nbytes`` as a bulk copy; returns (data, cycles).

        Used by the string-copy states: the consumer drains the window at
        the stream's sustained rate -- 16 B/cycle when the interface
        wrappers keep enough line requests in flight to cover the memory
        latency, less when ``max_outstanding`` is the bottleneck.
        """
        data = self.peek(nbytes)
        if len(data) < nbytes:
            raise DecodeError("bulk consume ran past end of stream "
                              "(truncated input)")
        self.consume(nbytes)
        if nbytes <= 0:
            return data, 0.0
        return data, nbytes / self.timing.stream_bytes_per_cycle
