"""Host-parallel fleet scaling measurement (``--fleet --jobs N``).

The fleet sweep proves shard count never changes charging; this module
measures what host parallelism buys on top: the same 1k-message replay
run serially and with one worker process per shard
(:mod:`repro.serve.parallel`), recording

* **byte-identity** -- a sha256 digest over every call's charging
  signature (status, response bytes, accelerator cycles, CPU cycles);
  the parallel digests must equal the serial one exactly, and the
  serial digest is committed in ``BENCH_fleet.json`` so CI catches any
  execution mode drifting from the baseline;
* **measured wall-clock speedup** -- serial wall over parallel wall,
  which is physically bounded by the machine's usable cores
  (:func:`repro.bench.pool.effective_cores`); and
* **ideal speedup** -- per-shard worker CPU seconds (reported by each
  worker, deterministic in shape) scheduled LPT onto ``jobs`` machines:
  the speedup this replay's shard balance supports when cores are not
  the constraint.  On a single-core runner the measured figure
  degenerates to ~1x while the ideal figure still gates the shard
  partition (a skewed ring that serialises on one shard fails it on
  any machine).

The scaling replay uses more tenants than the sweep default (48 vs 4):
with 4 tenants the ring parks everything on 2 of 4 shards, and no
amount of host parallelism can beat the biggest shard's share.  At 48
tenants the hottest shard carries ~30% of the work, supporting ~3.3x
ideal at 4 shards.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import replace

from repro.bench.pool import effective_cores
from repro.serve.fabric import FabricPolicy
from repro.serve.parallel import run_parallel_replay
from repro.serve.replay import (
    REPLAY_SERVE_POLICY,
    FleetReplaySpec,
    build_fleet_fabric,
    generate_calls,
    replay_through_fabric,
)

#: Tenant count for the scaling replay (see the module docstring).
SCALING_TENANTS = 48
#: Shard width of the scaling replay; jobs sweep up to this.
SCALING_SHARDS = 4
#: The acceptance floor: ideal speedup at 4 shards / 4 jobs must reach
#: this, and so must measured wall speedup whenever the machine has at
#: least ``jobs`` usable cores.
SCALING_FLOOR = 1.6


def scaling_spec(messages: int = 1_000,
                 base: FleetReplaySpec | None = None) -> FleetReplaySpec:
    """The seeded replay the scaling rows measure."""
    base = base or FleetReplaySpec()
    return replace(base, messages=messages, tenants=SCALING_TENANTS,
                   workload="fleet")


def charging_signature(outcomes) -> list[tuple]:
    """Per-call charging, in offered order -- the byte-identity
    comparand across execution modes."""
    return [(o.status, o.response, o.accel_cycles, o.cpu_cycles)
            for o in outcomes]


def charging_digest(outcomes) -> str:
    """sha256 over the charging signature.  Floats render via ``repr``
    (shortest round-trip form), so equal digests mean bit-equal cycle
    charging call by call."""
    digest = hashlib.sha256()
    for status, response, accel, cpu in charging_signature(outcomes):
        digest.update(status.encode())
        digest.update(b"\x00")
        digest.update(b"-" if response is None else response)
        digest.update(f"\x00{accel!r}\x00{cpu!r}\x01".encode())
    return digest.hexdigest()


def ideal_speedup(busy_seconds, jobs: int) -> float:
    """Speedup an LPT schedule of the per-shard busy times onto
    ``jobs`` machines achieves over running them back to back."""
    work = [b for b in busy_seconds if b > 0]
    if not work or jobs < 1:
        return 1.0
    machines = [0.0] * min(jobs, len(work))
    for chunk in sorted(work, reverse=True):
        machines[machines.index(min(machines))] += chunk
    makespan = max(machines)
    return (sum(work) / makespan) if makespan > 0 else 1.0


def measure_scaling(spec: FleetReplaySpec,
                    shards: int = SCALING_SHARDS,
                    jobs_list=(1, 2, 4),
                    serve=None, budget=None) -> tuple[list[dict], str]:
    """Run the scaling replay at every jobs level.

    Returns ``(rows, serial_digest)``: one row per jobs level (jobs=1
    is the serial fabric, the wall-clock baseline), and the serial
    charging digest every parallel row was checked against.
    """
    serve = serve or REPLAY_SERVE_POLICY
    policy = FabricPolicy(shards=shards, serve=serve)
    calls = generate_calls(spec)
    cores = effective_cores()

    start = time.perf_counter()
    fabric = build_fleet_fabric(policy, spec, budget)
    serial_outcomes = replay_through_fabric(fabric, calls)
    serial_wall = time.perf_counter() - start
    serial_digest = charging_digest(serial_outcomes)

    rows = [{
        "jobs": 1,
        "mode": "serial",
        "shards": shards,
        "messages": spec.messages,
        "tenants": spec.tenants,
        "interarrival_cycles": spec.interarrival_cycles,
        "cores": cores,
        "wall_seconds": serial_wall,
        "speedup": 1.0,
        "busy_seconds": None,
        "ideal_speedup": None,
        "cycles_identical": True,
        "charging_digest": serial_digest,
        "route_deviations": 0,
    }]
    for jobs in jobs_list:
        if jobs <= 1:
            continue
        start = time.perf_counter()
        result = run_parallel_replay(spec, policy, jobs=jobs,
                                     budget=budget, calls=calls)
        wall = time.perf_counter() - start
        digest = charging_digest(result.outcomes)
        rows.append({
            "jobs": jobs,
            "mode": "parallel",
            "shards": shards,
            "messages": spec.messages,
            "tenants": spec.tenants,
            "interarrival_cycles": spec.interarrival_cycles,
            "cores": cores,
            "wall_seconds": wall,
            "speedup": (serial_wall / wall) if wall > 0 else 0.0,
            "busy_seconds": result.busy_seconds,
            "ideal_speedup": ideal_speedup(result.busy_seconds, jobs),
            "cycles_identical": digest == serial_digest,
            "charging_digest": digest,
            "route_deviations": result.route_deviations,
        })
    return rows, serial_digest
