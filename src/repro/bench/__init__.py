"""Evaluation harness: workloads, the three-system runner, and reports.

Regenerates every figure and table of the paper's evaluation:
microbenchmarks (Figures 11a-11d), HyperProtoBench (Figures 12-13), the
fleet-study figures (2-7), and the ASIC table (Section 5.3).
"""

from repro.bench.runner import (
    Workload,
    SystemResult,
    BenchmarkResult,
    run_deserialization,
    run_serialization,
    SYSTEMS,
)
from repro.bench.microbench import (
    nonalloc_bench_names,
    alloc_bench_names,
    build_microbench,
    DEFAULT_BATCH,
)
from repro.bench.report import format_results_table, geomean, speedup_summary

__all__ = [
    "Workload",
    "SystemResult",
    "BenchmarkResult",
    "run_deserialization",
    "run_serialization",
    "SYSTEMS",
    "nonalloc_bench_names",
    "alloc_bench_names",
    "build_microbench",
    "DEFAULT_BATCH",
    "format_results_table",
    "geomean",
    "speedup_summary",
]
