"""RoCC-vs-PCIe attach-point sweep (the transport crossover study).

The RoCC attach point charges a small fixed dispatch cost per operation;
the PCIe attach point amortises its much larger fixed costs (doorbell
MMIO, DMA latency, interrupt service) over submission batches while
paying a per-byte link charge.  This module sweeps message size x batch
size over both transports and reports, per message size, the smallest
batch at which PCIe matches or beats RoCC on total modeled cycles
(``stats.cycles + stats.transport_cycles``).

Protocol work is transport-independent by construction -- the sweep
asserts ``stats.cycles`` is bit-identical across transports in every
cell -- so the crossover is purely an attach-point story: small messages
cross once batching amortises the doorbell/interrupt overhead below the
RoCC dispatch cost; large messages never cross because the per-byte
link charge dominates (docs/MODEL.md, "Attach points").
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.bench.microbench import _populate_string, _scalar_message_type
from repro.bench.runner import Workload
from repro.proto.types import FieldType
from repro.soc.config import SoCConfig
from repro.soc.transport import TRANSPORTS

#: Full sweep grid: string payload bytes x messages per batch.
SWEEP_SIZES = (16, 32, 64, 128, 256, 512, 1024)
SWEEP_BATCHES = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)

#: CI smoke grid: enough points to exercise the crossover and the
#: monotone-amortisation gate without the full sweep's runtime.
SMOKE_SIZES = (32, 128, 512)
SMOKE_BATCHES = (1, 8, 64, 256)


def build_sized_workload(size: int, batch: int) -> Workload:
    """A batch of single-string messages with ``size`` payload bytes.

    Reuses the microbenchmark string builder so payloads are the same
    deterministic function of (size, batch) everywhere.
    """
    name = f"transport-s{size}"
    descriptor = _scalar_message_type(name, FieldType.STRING, 1,
                                      repeated=False)
    return Workload(name, descriptor,
                    _populate_string(descriptor, size, batch))


def _run_cell(workload: Workload, operation: str,
              transport: str) -> dict:
    """One (workload, operation, transport) measurement."""
    from repro.accel.driver import ProtoAccelerator

    accel = ProtoAccelerator(config=SoCConfig(transport=transport))
    accel.register_types([workload.descriptor])
    if operation == "deserialize":
        _, stats = accel.deserialize_batch(workload.descriptor,
                                           workload.wire_buffers())
    elif operation == "serialize":
        addresses = [accel.load_object(m) for m in workload.messages]
        _, stats = accel.serialize_batch(workload.descriptor, addresses)
    else:
        raise ValueError(f"unknown operation {operation!r}")
    return {
        "cycles": stats.cycles,
        "transport_cycles": stats.transport_cycles,
        "total_cycles": stats.cycles + stats.transport_cycles,
    }


def sweep_transports(sizes: Sequence[int] = SWEEP_SIZES,
                     batches: Sequence[int] = SWEEP_BATCHES,
                     operation: str = "deserialize") -> list[dict]:
    """Run the size x batch grid on every transport.

    Returns one row per (size, batch) cell with both transports' cycle
    totals and per-operation amortised transport cost.  Raises if the
    protocol-work cycles ever differ across transports -- that identity
    is the subsystem's core invariant, and the sweep doubles as its
    end-to-end check.
    """
    rows = []
    for size in sizes:
        for batch in batches:
            workload = build_sized_workload(size, batch)
            cells = {t: _run_cell(workload, operation, t)
                     for t in TRANSPORTS}
            protocol_cycles = {t: c["cycles"] for t, c in cells.items()}
            if len(set(protocol_cycles.values())) != 1:
                raise AssertionError(
                    "protocol cycles diverged across transports at "
                    f"size={size} batch={batch}: {protocol_cycles}")
            row = {"size": size, "batch": batch, "operation": operation,
                   "cycles": cells["rocc"]["cycles"]}
            for t in TRANSPORTS:
                row[f"{t}_transport_cycles"] = cells[t]["transport_cycles"]
                row[f"{t}_total_cycles"] = cells[t]["total_cycles"]
                row[f"{t}_transport_per_op"] = (
                    cells[t]["transport_cycles"] / batch)
            row["pcie_wins"] = (row["pcie_total_cycles"]
                                <= row["rocc_total_cycles"])
            rows.append(row)
    return rows


def crossover_batches(rows: Sequence[dict]) -> list[dict]:
    """Per message size, the smallest swept batch where PCIe wins.

    ``crossover_batch`` is ``None`` when PCIe never matches RoCC within
    the swept batch range (large payloads: the per-byte link charge
    exceeds the RoCC dispatch cost regardless of amortisation).
    """
    sizes = sorted({row["size"] for row in rows})
    out = []
    for size in sizes:
        cells = sorted((r for r in rows if r["size"] == size),
                       key=lambda r: r["batch"])
        crossover: Optional[int] = next(
            (r["batch"] for r in cells if r["pcie_wins"]), None)
        largest = cells[-1]
        out.append({
            "size": size,
            "operation": largest["operation"],
            "crossover_batch": crossover,
            "rocc_per_op_at_max_batch":
                largest["rocc_transport_per_op"],
            "pcie_per_op_at_max_batch":
                largest["pcie_transport_per_op"],
            "max_batch": largest["batch"],
        })
    return out


def amortization_violations(rows: Sequence[dict]) -> list[dict]:
    """Cells where PCIe per-op transport cost *rises* with batch size.

    Doubling the batch must never increase the amortised PCIe cost per
    operation at a fixed message size -- the fixed doorbell/DMA/interrupt
    charges only spread thinner.  Returns the offending cell pairs
    (empty means the monotone-amortisation gate passes).
    """
    violations = []
    for size in sorted({row["size"] for row in rows}):
        cells = sorted((r for r in rows if r["size"] == size),
                       key=lambda r: r["batch"])
        for before, after in zip(cells, cells[1:]):
            if (after["pcie_transport_per_op"]
                    > before["pcie_transport_per_op"] + 1e-9):
                violations.append({
                    "size": size,
                    "batch_before": before["batch"],
                    "batch_after": after["batch"],
                    "per_op_before": before["pcie_transport_per_op"],
                    "per_op_after": after["pcie_transport_per_op"],
                })
    return violations
