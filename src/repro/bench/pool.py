"""Shared process-pool plumbing for every host-parallel path.

Three callers fan work across processes -- the benchmark harness
(:func:`repro.bench.harness.run_many`), the ``python -m repro.bench``
CLI, and the fleet's host-parallel shard execution
(:mod:`repro.serve.parallel`).  Before this module each grew its own
``ProcessPoolExecutor`` wiring; now they share one entry point so

* every worker runs the same :func:`warm_worker` initializer (numpy
  import when available, execution-tier module imports, software-CPU
  model construction) instead of cold-starting on its first task, and
* the harness's process-wide :class:`~repro.bench.harness.
  HarnessOptions` are installed in each worker exactly once, at pool
  construction, rather than smuggled through every task payload.

Pools are cheap to keep alive: the module-global caches the workers
warm (the codegen ``CODE_CACHE``, the memoization caches, parsed-schema
state) live per process, so a pool reused across many fleet replay
points amortises its warm-up across all of them.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Optional


def effective_cores() -> int:
    """CPUs this process may actually schedule on (affinity-aware).

    Wall-clock speedup from host parallelism is physically bounded by
    this number; the fleet scaling gate uses it to decide whether a
    measured-speedup floor is meaningful on the current machine.
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def warm_worker(options=None, extra: Optional[Callable[[], None]] = None
                ) -> None:
    """Process-pool initializer: install harness options and pre-warm.

    Runs once per worker process.  The warm-up covers the imports and
    model singletons every benchmark or fleet task would otherwise pay
    on its first call -- numpy (optional; the batch tier degrades
    without it), both execution-tier modules, and the software CPU
    models -- so per-task latency measures the task, not the cold
    start.  ``extra`` is an optional picklable callable for
    caller-specific warm-up (e.g. the fleet replay pre-parses its
    schema templates).
    """
    if options is not None:
        from repro.bench import harness
        harness._OPTIONS = options
    try:  # numpy is an optional [batch] extra; scalar fallback is fine
        import numpy  # noqa: F401
    except ImportError:
        pass
    import repro.accel.batchgen  # noqa: F401
    import repro.accel.codegen  # noqa: F401
    from repro.cpu.boom import boom_cpu
    from repro.cpu.xeon import xeon_cpu
    boom_cpu()
    xeon_cpu()
    if extra is not None:
        extra()


def make_pool(jobs: int, options=None,
              warm: Optional[Callable[[], None]] = None
              ) -> ProcessPoolExecutor:
    """A worker pool with the shared initializer installed.

    ``options`` (a :class:`~repro.bench.harness.HarnessOptions`) is
    installed as the workers' process-wide harness options; ``warm`` is
    forwarded to :func:`warm_worker` as the caller-specific extra.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    return ProcessPoolExecutor(max_workers=jobs,
                               initializer=warm_worker,
                               initargs=(options, warm))
