"""CLI: regenerate the paper's figures without pytest.

Usage::

    python -m repro.bench                      # list available figures
    python -m repro.bench fig11a               # regenerate one
    python -m repro.bench all                  # regenerate everything
    python -m repro.bench all --jobs 4         # fan workloads across 4
                                               # worker processes
    python -m repro.bench fig12 --no-cache     # ignore results/.cache/
    python -m repro.bench faults               # fault degradation curve
    python -m repro.bench fig11a --fault-rate 0.01
                                               # inject per-message faults
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.figures import ALL_FIGURES
from repro.bench.harness import set_options
from repro.faults import FaultPlan


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's evaluation figures.")
    parser.add_argument(
        "figures", nargs="*", metavar="figure",
        help="figure names (or 'all'); run with none to list them")
    parser.add_argument(
        "-j", "--jobs", type=int, default=1,
        help="worker processes for benchmark workloads (default 1)")
    parser.add_argument(
        "--no-cache", action="store_true",
        help="bypass the persistent result cache under results/.cache/")
    parser.add_argument(
        "--fault-rate", type=float, default=0.0, metavar="P",
        help="per-message fault-injection probability for accelerated "
             "runs (default 0: faults disabled)")
    parser.add_argument(
        "--fault-seed", type=int, default=0,
        help="fault-injection RNG seed (default 0)")
    args = parser.parse_args(argv)
    if not args.figures:
        parser.print_usage()
        print("available figures:", ", ".join(ALL_FIGURES))
        return 1
    targets = (list(ALL_FIGURES) if args.figures == ["all"]
               else args.figures)
    plan = (FaultPlan(seed=args.fault_seed, rate=args.fault_rate)
            if args.fault_rate > 0 else None)
    # The one jobs/cache/faults entry point, shared with scripts/
    # bench_speed.py: run_many reads these options and the shared pool
    # initializer (repro.bench.pool.warm_worker) installs them in
    # every worker process.
    set_options(jobs=args.jobs, disk_cache=not args.no_cache,
                fault_plan=plan)
    for target in targets:
        generator = ALL_FIGURES.get(target)
        if generator is None:
            print(f"unknown figure {target!r}; available: "
                  + ", ".join(ALL_FIGURES))
            return 1
        print(f"=== {target} ===")
        print(generator())
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
