"""CLI: regenerate the paper's figures without pytest.

Usage::

    python -m repro.bench              # list available figures
    python -m repro.bench fig11a       # regenerate one
    python -m repro.bench all          # regenerate everything
"""

from __future__ import annotations

import sys

from repro.bench.figures import ALL_FIGURES


def main(argv: list[str]) -> int:
    if not argv:
        print("usage: python -m repro.bench <figure>|all")
        print("available figures:", ", ".join(ALL_FIGURES))
        return 1
    targets = list(ALL_FIGURES) if argv == ["all"] else argv
    for target in targets:
        generator = ALL_FIGURES.get(target)
        if generator is None:
            print(f"unknown figure {target!r}; available: "
                  + ", ".join(ALL_FIGURES))
            return 1
        print(f"=== {target} ===")
        print(generator())
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
