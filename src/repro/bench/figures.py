"""One entry point per paper figure/table, independent of pytest.

Each function regenerates one evaluation artifact and returns its rows
as formatted text; the ``benchmarks/`` files and the
``python -m repro.bench`` CLI are thin wrappers over these.
"""

from __future__ import annotations

from repro.accel.asic_model import AsicModel
from repro.bench.harness import WorkloadSpec, run_many
from repro.bench.microbench import alloc_bench_names, nonalloc_bench_names
from repro.bench.report import (
    ascii_bar_chart,
    fault_degradation_table,
    fleet_table,
    format_results_table,
    geomean,
    serving_table,
    speedup_summary,
)
from repro.faults import FaultPlan
from repro.fleet.cycle_model import CycleAttributionModel
from repro.fleet.distributions import (
    BYTES_FIELD_SIZE_BUCKETS,
    DENSITY_HISTOGRAM,
    FIELD_BYTES_SHARES,
    FIELD_COUNT_SHARES,
    MESSAGE_SIZE_BUCKETS,
    PROTO2_BYTES_SHARE,
    RPC_SHARE_OF_DESER,
    RPC_SHARE_OF_SER,
    cumulative_message_size_share,
    density_share_above,
)
from repro.fleet.profiler import GwpProfile, fleet_opportunity, realized_savings
from repro.fleet.sampler import FleetSampler, SampleAnalysis
from repro.hyperprotobench import bench_names

#: Default batch size for the timed microbenchmark batches.
MICRO_BATCH = 32
#: Default batch size for HyperProtoBench runs.
HYPER_BATCH = 10


def figure2() -> str:
    """Fleet C++ protobuf cycles by operation + Section 3.2-3.4 scalars."""
    profile = GwpProfile()
    lines = ["operation       % of C++ protobuf cycles   % of fleet cycles"]
    for op, share in profile.figure2_rows():
        lines.append(f"{op:<15} {share * 100:>24.1f} "
                     f"{profile.op_fleet_share(op) * 100:>19.2f}")
    numbers = fleet_opportunity()
    lines.append("")
    lines.append(f"protobuf share of fleet cycles: "
                 f"{numbers['protobuf_share'] * 100:.1f}%  (paper: 9.6%)")
    lines.append(f"C++ share of protobuf cycles:   "
                 f"{numbers['cpp_share_of_protobuf'] * 100:.0f}%  "
                 "(paper: 88%)")
    lines.append(f"deser fleet share:              "
                 f"{numbers['deser_fleet_share'] * 100:.2f}%  (paper: 2.2%)")
    lines.append(f"ser (+ByteSize) fleet share:    "
                 f"{numbers['ser_fleet_share'] * 100:.2f}%  (paper: 1.25%)")
    lines.append(f"acceleration opportunity:       "
                 f"{numbers['accelerated_opportunity'] * 100:.2f}%  "
                 "(paper: 3.45%)")
    lines.append(f"proto2 share of bytes:          "
                 f"{PROTO2_BYTES_SHARE * 100:.0f}%  (paper: 96%)")
    lines.append(f"RPC share of deser cycles:      "
                 f"{RPC_SHARE_OF_DESER * 100:.1f}%  (paper: 16.3%)")
    lines.append(f"RPC share of ser cycles:        "
                 f"{RPC_SHARE_OF_SER * 100:.1f}%  (paper: 35.2%)")
    return "\n".join(lines)


def figure3(samples: int = 8000) -> str:
    """Top-level message size distribution (published + re-sampled)."""
    analysis = SampleAnalysis(FleetSampler(seed=17).sample_many(samples))
    sampled = analysis.message_size_histogram()
    lines = [f"{'bucket (bytes)':<18} {'published %':>12} {'sampled %':>12}"]
    for bucket in MESSAGE_SIZE_BUCKETS:
        lines.append(f"{bucket.label:<18} {bucket.share * 100:>12.2f} "
                     f"{sampled[bucket.label] * 100:>12.2f}")
    lines.append("")
    for limit, paper in ((8, "24%"), (32, "56%"), (512, "93%")):
        lines.append(f"cumulative <={limit} B: "
                     f"{cumulative_message_size_share(limit) * 100:.0f}%  "
                     f"(paper: {paper})")
    return "\n".join(lines)


def figure4(samples: int = 8000) -> str:
    """Field-type count/byte shares and bytes-field sizes."""
    analysis = SampleAnalysis(FleetSampler(seed=23).sample_many(samples))
    lines = ["Figure 4a: % of fields observed by type"]
    for name, share in sorted(FIELD_COUNT_SHARES.items(),
                              key=lambda kv: -kv[1]):
        lines.append(f"  {name:<15} {share * 100:>6.1f}")
    lines.append(f"  varint-like total: "
                 f"{analysis.varint_like_count_share() * 100:.0f}% sampled "
                 "(paper: >56%)")
    lines.append("")
    lines.append("Figure 4b: % of message bytes observed by type")
    for name, share in sorted(FIELD_BYTES_SHARES.items(),
                              key=lambda kv: -kv[1]):
        lines.append(f"  {name:<15} {share * 100:>6.1f}")
    lines.append(f"  bytes-like total: "
                 f"{analysis.bytes_like_byte_share() * 100:.0f}% sampled "
                 "(paper: >92%)")
    lines.append("")
    lines.append("Figure 4c: % of bytes fields by field size")
    sampled = analysis.bytes_field_size_histogram()
    for bucket in BYTES_FIELD_SIZE_BUCKETS:
        lines.append(f"  {bucket.label:<15} published "
                     f"{bucket.share * 100:>6.2f}   sampled "
                     f"{sampled[bucket.label] * 100:>6.2f}")
    return "\n".join(lines)


def figure5_6(operation: str,
              model: CycleAttributionModel | None = None) -> str:
    """The 24-slice time attribution (Figure 5 deser, Figure 6 ser)."""
    model = model or CycleAttributionModel()
    figure = "Figure 5" if operation == "deserialize" else "Figure 6"
    shares = model.time_shares(operation)
    lines = [f"{figure}: estimated fleet {operation} time by slice",
             f"{'slice':<22} {'bytes %':>8} {'time %':>8} "
             f"{'Gbit/s on host':>15}"]
    for slice_ in model.slices:
        lines.append(
            f"{slice_.name:<22} {slice_.byte_share * 100:>8.2f} "
            f"{shares[slice_.name] * 100:>8.2f} "
            f"{model.throughput_gbps(slice_, operation):>15.2f}")
    lines.append("")
    above = model.share_of_time_above(8.0, operation)
    lines.append(f"time spent above 1 GB/s: {above * 100:.0f}%  "
                 "(paper, deser: 14%)")
    ratio = model.per_byte_speed_ratio(operation)
    lines.append(f"fastest/slowest per-byte ratio: {ratio:.0f}x  "
                 "(paper: 100-500x)")
    return "\n".join(lines)


def figure7(samples: int = 8000) -> str:
    """Field-number usage density and the ADT break-even argument."""
    analysis = SampleAnalysis(FleetSampler(seed=31).sample_many(samples))
    lines = [f"{'density bucket':<16} {'share %':>8}"]
    for edge, share in DENSITY_HISTOGRAM.items():
        label = ("< 1/64" if edge == 0.0
                 else f"{edge:.2f} - {min(edge + 0.05, 1.0):.2f}")
        lines.append(f"{label:<16} {share * 100:>8.2f}")
    lines.append("")
    lines.append(f"messages with density > 1/64 (published): "
                 f"{density_share_above(1 / 64) * 100:.0f}%  (paper: >=92%)")
    lines.append(f"messages with density > 1/64 (sampled):   "
                 f"{analysis.density_share_above(1 / 64) * 100:.0f}%")
    lines.append("")
    lines.append("break-even: prior work writes 64 bits per present field;")
    lines.append("our design reads 1 bit per defined field number, so any")
    lines.append("density above 1/64 favours per-type ADTs (Section 3.7).")
    return "\n".join(lines)


_FIG11 = {
    "11a": ("Figure 11a: deserialization, non-alloc types (Gbit/s)",
            "deserialize", nonalloc_bench_names, (7.0, 2.6)),
    "11b": ("Figure 11b: serialization, inline types (Gbit/s)",
            "serialize", nonalloc_bench_names, (15.5, 4.5)),
    "11c": ("Figure 11c: deserialization, alloc types (Gbit/s)",
            "deserialize", alloc_bench_names, (14.2, 6.9)),
    "11d": ("Figure 11d: serialization, non-inline types (Gbit/s)",
            "serialize", alloc_bench_names, (10.1, 2.8)),
}


def _fig11_specs(which: str, batch: int) -> list[WorkloadSpec]:
    _, operation, names, _ = _FIG11[which]
    return [WorkloadSpec("micro", name, operation, batch)
            for name in names()]


def figure11(which: str, batch: int = MICRO_BATCH) -> str:
    """One of the four microbenchmark classes: '11a'..'11d'."""
    title, _, _, paper = _FIG11[which]
    results = run_many(_fig11_specs(which, batch))
    speedups = speedup_summary(results)
    table = format_results_table(results, title)
    table += (f"\naccel speedup: {speedups['vs riscv-boom']:.1f}x vs BOOM "
              f"(paper: {paper[0]}x), {speedups['vs Xeon']:.1f}x vs Xeon "
              f"(paper: {paper[1]}x)")
    table += "\n\n" + ascii_bar_chart(results)
    return table


def section513(batch: int = MICRO_BATCH) -> str:
    """Overall microbenchmark geomeans (paper: 11.2x / 3.8x)."""
    lines = [f"{'class':<22} {'vs BOOM':>9} {'paper':>7} "
             f"{'vs Xeon':>9} {'paper':>7}"]
    boom_ratios, xeon_ratios = [], []
    for which, (label, _, _, paper) in _FIG11.items():
        results = run_many(_fig11_specs(which, batch))
        speedups = speedup_summary(results)
        boom_ratios.append(speedups["vs riscv-boom"])
        xeon_ratios.append(speedups["vs Xeon"])
        lines.append(f"{which + ' ' + label[7:25]:<22} "
                     f"{speedups['vs riscv-boom']:>8.1f}x "
                     f"{paper[0]:>6.1f}x {speedups['vs Xeon']:>8.1f}x "
                     f"{paper[1]:>6.1f}x")
    lines.append("-" * 58)
    lines.append(f"{'overall geomean':<22} {geomean(boom_ratios):>8.1f}x "
                 f"{'11.2x':>7} {geomean(xeon_ratios):>8.1f}x "
                 f"{'3.8x':>7}")
    return "\n".join(lines)


def figure12(batch: int = HYPER_BATCH) -> str:
    """HyperProtoBench deserialization + fleet-savings extrapolation."""
    results = run_many([WorkloadSpec("hyper", name, "deserialize", batch)
                        for name in bench_names()])
    speedups = speedup_summary(results)
    table = format_results_table(
        results, "Figure 12: HyperProtoBench deserialization (Gbit/s)")
    table += (f"\naccel speedup: {speedups['vs riscv-boom']:.1f}x vs BOOM, "
              f"{speedups['vs Xeon']:.1f}x vs Xeon "
              "(paper combined: 6.2x / 3.8x)")
    savings = realized_savings(speedups["vs riscv-boom"],
                               speedups["vs riscv-boom"])
    table += (f"\nextrapolated fleet savings: {savings * 100:.1f}% of "
              "cycles (paper: over 2.5%)")
    table += "\n\n" + ascii_bar_chart(results)
    return table


def figure13(batch: int = HYPER_BATCH) -> str:
    """HyperProtoBench serialization."""
    results = run_many([WorkloadSpec("hyper", name, "serialize", batch)
                        for name in bench_names()])
    speedups = speedup_summary(results)
    table = format_results_table(
        results, "Figure 13: HyperProtoBench serialization (Gbit/s)")
    table += (f"\naccel speedup: {speedups['vs riscv-boom']:.1f}x vs BOOM, "
              f"{speedups['vs Xeon']:.1f}x vs Xeon "
              "(paper combined: 6.2x / 3.8x)")
    table += "\n\n" + ascii_bar_chart(results)
    return table


#: Default per-message fault rates for the degradation sweep.
FAULT_RATES = (0.0, 0.005, 0.01, 0.02, 0.05)


def fault_degradation(rates: tuple[float, ...] = FAULT_RATES,
                      batch: int = MICRO_BATCH,
                      hyper_batch: int = HYPER_BATCH,
                      seed: int = 0) -> str:
    """Accelerator throughput vs per-message fault rate.

    Sweeps the Figure 11 microbenchmarks plus HyperProtoBench bench0
    (both operations) through the hardened recovery path at each rate.
    Every run still verifies results, so the curve doubles as an
    end-to-end proof that recovery is value-preserving.
    """
    specs = []
    for which in _FIG11:
        specs.extend(_fig11_specs(which, batch))
    specs.append(WorkloadSpec("hyper", "bench0", "deserialize", hyper_batch))
    specs.append(WorkloadSpec("hyper", "bench0", "serialize", hyper_batch))
    curve = []
    for rate in rates:
        plan = FaultPlan(seed=seed, rate=rate) if rate > 0 else None
        curve.append((rate, run_many(specs, faults=plan)))
    return fault_degradation_table(curve)


#: Offered-load points for the serving sweep (mean cycles between
#: arrivals, hottest last).
SERVING_INTERARRIVALS = (4_000.0, 2_000.0, 1_000.0, 500.0, 250.0)


def serving(interarrivals: tuple[float, ...] = SERVING_INTERARRIVALS,
            calls: int = 300, fault_rate: float = 0.01,
            seed: int = 0) -> str:
    """Resilient-serving degradation: shed rate vs offered load.

    Drives the 2-tile deadline-gated Echo server (docs/SERVING.md)
    through an offered-load sweep at ``fault_rate`` injected faults per
    accelerator operation.  The graceful-degradation claim the figure
    demonstrates: shed rate rises with load while the p99 latency of
    admitted calls stays bounded by ``deadline + watchdog_budget``.
    """
    from repro.serve import (
        AdmissionPolicy,
        ServePolicy,
        ServingWorkloadSpec,
        sweep_offered_load,
    )
    plan = (FaultPlan(seed=seed, rate=fault_rate)
            if fault_rate > 0 else None)
    policy = ServePolicy(
        tiles=2,
        fault_plan=plan,
        watchdog_budget_cycles=10_000.0,
        admission=AdmissionPolicy(max_depth=16,
                                  deadline_cycles=50_000.0))
    spec = ServingWorkloadSpec(calls=calls)
    rows = sweep_offered_load(interarrivals, spec, policy)
    table = serving_table(rows)
    table += (f"\n\nfault rate {fault_rate * 100:.1f}% per accelerator "
              "operation; every call bounded by deadline 50,000 + "
              "watchdog budget 10,000 cycles")
    return table


#: Offered-load points for the fleet sweep (mean cycles between
#: arrivals, hottest last) and the shard counts swept at each point.
FLEET_INTERARRIVALS = (2_000.0, 1_000.0, 500.0, 300.0)
FLEET_SHARDS = (1, 2, 4)


def fleet(shard_counts: tuple[int, ...] = FLEET_SHARDS,
          interarrivals: tuple[float, ...] = FLEET_INTERARRIVALS,
          messages: int = 500, workload: str = "echo",
          seed: int = 424242) -> str:
    """Fabric scaling: p99 and shed rate vs offered load, per shard count.

    Replays the same seeded open-loop arrival sequence through 1, 2,
    and 4 fabric shards (docs/SERVING.md, fabric section).  Per-call
    cycle charging is bit-identical across shard counts under the
    pure-charging serving discipline, so everything the figure shows --
    falling p99, collapsing shed rate -- is pure queueing relief, not
    accounting drift.
    """
    from repro.serve import FleetReplaySpec, sweep_fleet
    spec = FleetReplaySpec(messages=messages, workload=workload,
                           seed=seed)
    rows = sweep_fleet(shard_counts, interarrivals, spec)
    table = fleet_table(rows)
    table += ("\n\nsame seeded call sequence at every load point; "
              "per-call charging bit-identical across shard counts "
              "(tests/serve/test_fleet_replay.py)")
    return table


def section53() -> str:
    """ASIC frequency/area with per-component breakdowns."""
    model = AsicModel()
    lines = [model.report(), "",
             "paper: deserializer 1.95 GHz / 0.133 mm^2; "
             "serializer 1.84 GHz / 0.278 mm^2", "",
             "deserializer area breakdown (mm^2):"]
    for name, area in model.deserializer.breakdown():
        lines.append(f"  {name:<38} {area:.4f}")
    lines.append("serializer area breakdown (mm^2):")
    for name, area in model.serializer.breakdown():
        lines.append(f"  {name:<38} {area:.4f}")
    return "\n".join(lines)


#: Figure name -> generator, for the CLI.
ALL_FIGURES = {
    "fig2": figure2,
    "fig3": figure3,
    "fig4": figure4,
    "fig5": lambda: figure5_6("deserialize"),
    "fig6": lambda: figure5_6("serialize"),
    "fig7": figure7,
    "fig11a": lambda: figure11("11a"),
    "fig11b": lambda: figure11("11b"),
    "fig11c": lambda: figure11("11c"),
    "fig11d": lambda: figure11("11d"),
    "sec5.1.3": section513,
    "fig12": figure12,
    "fig13": figure13,
    "sec5.3": section53,
    "faults": fault_degradation,
    "serving": serving,
    "fleet": fleet,
}
