"""Result formatting: the tables and geomean summaries the paper reports."""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.bench.runner import BenchmarkResult, SYSTEMS


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the paper's summary statistic for Figures 11-13)."""
    values = list(values)
    if not values:
        raise ValueError("geomean of no values")
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def format_results_table(results: Sequence[BenchmarkResult],
                         title: str = "") -> str:
    """Render one figure's series as the rows the paper plots.

    Columns are the three systems in plot order, plus a final geomean row.
    """
    lines = []
    if title:
        lines.append(title)
    header = f"{'benchmark':<18}" + "".join(f"{s:>18}" for s in SYSTEMS)
    lines.append(header)
    lines.append("-" * len(header))
    for result in results:
        row = f"{result.workload:<18}"
        for system in SYSTEMS:
            row += f"{result.gbps(system):>18.2f}"
        lines.append(row)
    lines.append("-" * len(header))
    row = f"{'geomean':<18}"
    for system in SYSTEMS:
        row += f"{geomean(r.gbps(system) for r in results):>18.2f}"
    lines.append(row)
    return "\n".join(lines)


def ascii_bar_chart(results: Sequence[BenchmarkResult],
                    width: int = 44) -> str:
    """Render a figure's series as grouped horizontal bars.

    One group per benchmark, one bar per system, matching the paper's
    grouped-bar figures; bar lengths are linear in Gbit/s, normalised to
    the largest value in the figure.
    """
    peak = max(result.gbps(system)
               for result in results for system in SYSTEMS)
    if peak <= 0:
        raise ValueError("nothing to plot")
    glyphs = {"riscv-boom": "#", "Xeon": "=", "riscv-boom-accel": "*"}
    lines = ["legend: " + "  ".join(f"{glyph} {system}"
                                    for system, glyph in glyphs.items())]
    for result in results:
        lines.append(f"{result.workload}")
        for system in SYSTEMS:
            value = result.gbps(system)
            bar = glyphs[system] * max(1, round(value / peak * width))
            lines.append(f"  {bar} {value:.2f}")
    return "\n".join(lines)


def speedup_summary(results: Sequence[BenchmarkResult]) -> dict[str, float]:
    """Geomean accelerator speedups vs each baseline (the paper's
    headline "NxM" numbers)."""
    return {
        "vs riscv-boom": geomean(
            r.gbps("riscv-boom-accel") / r.gbps("riscv-boom")
            for r in results),
        "vs Xeon": geomean(
            r.gbps("riscv-boom-accel") / r.gbps("Xeon") for r in results),
    }
