"""Result formatting: the tables and geomean summaries the paper reports."""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.bench.runner import BenchmarkResult, SYSTEMS


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the paper's summary statistic for Figures 11-13)."""
    values = list(values)
    if not values:
        raise ValueError("geomean of no values")
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def format_results_table(results: Sequence[BenchmarkResult],
                         title: str = "") -> str:
    """Render one figure's series as the rows the paper plots.

    Columns are the three systems in plot order, plus a final geomean row.
    """
    lines = []
    if title:
        lines.append(title)
    header = f"{'benchmark':<18}" + "".join(f"{s:>18}" for s in SYSTEMS)
    lines.append(header)
    lines.append("-" * len(header))
    for result in results:
        row = f"{result.workload:<18}"
        for system in SYSTEMS:
            row += f"{result.gbps(system):>18.2f}"
        lines.append(row)
    lines.append("-" * len(header))
    row = f"{'geomean':<18}"
    for system in SYSTEMS:
        row += f"{geomean(r.gbps(system) for r in results):>18.2f}"
    lines.append(row)
    return "\n".join(lines)


def ascii_bar_chart(results: Sequence[BenchmarkResult],
                    width: int = 44) -> str:
    """Render a figure's series as grouped horizontal bars.

    One group per benchmark, one bar per system, matching the paper's
    grouped-bar figures; bar lengths are linear in Gbit/s, normalised to
    the largest value in the figure.
    """
    peak = max(result.gbps(system)
               for result in results for system in SYSTEMS)
    if peak <= 0:
        raise ValueError("nothing to plot")
    glyphs = {"riscv-boom": "#", "Xeon": "=", "riscv-boom-accel": "*"}
    lines = ["legend: " + "  ".join(f"{glyph} {system}"
                                    for system, glyph in glyphs.items())]
    for result in results:
        lines.append(f"{result.workload}")
        for system in SYSTEMS:
            value = result.gbps(system)
            bar = glyphs[system] * max(1, round(value / peak * width))
            lines.append(f"  {bar} {value:.2f}")
    return "\n".join(lines)


def fault_degradation_table(
        curve: Sequence[tuple[float, Sequence[BenchmarkResult]]],
        width: int = 40) -> str:
    """Render a fault-rate sweep as a degradation curve.

    ``curve`` pairs each per-message fault rate with the results of the
    same spec list run at that rate; the table reports the accelerator's
    geomean throughput, its fraction of the fault-free figure, and the
    recovery-path counters accumulated across the whole spec list.
    """
    if not curve:
        raise ValueError("no fault-rate points to plot")
    accel = "riscv-boom-accel"
    points = []
    for rate, results in curve:
        gbps = geomean(r.gbps(accel) for r in results)
        srs = [r.results[accel] for r in results]
        points.append({
            "rate": rate,
            "gbps": gbps,
            "faults": sum(sr.faults_injected for sr in srs),
            "retries": sum(sr.transient_retries for sr in srs),
            "fallbacks": sum(sr.cpu_fallbacks for sr in srs),
        })
    baseline = next((p["gbps"] for p in points if p["rate"] == 0),
                    points[0]["gbps"])
    header = (f"{'fault rate':>10} {'accel Gbit/s':>13} {'of clean':>9} "
              f"{'faults':>8} {'retries':>8} {'fallbacks':>10}")
    lines = ["fault-injection degradation curve (accelerator geomean)",
             header, "-" * len(header)]
    for p in points:
        rel = p["gbps"] / baseline if baseline else 0.0
        lines.append(f"{p['rate'] * 100:>9.2f}% {p['gbps']:>13.2f} "
                     f"{rel * 100:>8.1f}% {p['faults']:>8,} "
                     f"{p['retries']:>8,} {p['fallbacks']:>10,}")
    lines.append("")
    for p in points:
        rel = p["gbps"] / baseline if baseline else 0.0
        bar = "*" * max(1, round(rel * width))
        lines.append(f"{p['rate'] * 100:>6.2f}% {bar} {rel * 100:.1f}%")
    return "\n".join(lines)


def serving_table(rows: Sequence[dict], width: int = 40) -> str:
    """Render an offered-load serving sweep as a degradation table.

    ``rows`` come from :func:`repro.serve.workload.sweep_offered_load`:
    one dict per offered-load point, hottest last.  The table shows the
    graceful-degradation story: as interarrival shrinks the shed rate
    climbs while the p99 latency of *admitted* calls stays bounded by
    the deadline budget.
    """
    if not rows:
        raise ValueError("no offered-load points to plot")
    header = (f"{'interarrival':>12} {'offered':>8} {'ok':>6} "
              f"{'shed %':>7} {'p50 cyc':>10} {'p99 cyc':>10} "
              f"{'host':>5} {'wdog':>5} {'health':>9}")
    lines = ["serving offered-load sweep (2-tile pool, deadline-gated)",
             header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['interarrival_cycles']:>12.0f} {row['offered']:>8,} "
            f"{row['succeeded']:>6,} {row['shed_rate'] * 100:>6.1f}% "
            f"{row['p50_cycles']:>10.0f} {row['p99_cycles']:>10.0f} "
            f"{row['host_fallbacks']:>5,} {row['watchdog_aborts']:>5,} "
            f"{row['health']:>9}")
    lines.append("")
    peak = max(row["shed_rate"] for row in rows)
    for row in rows:
        share = row["shed_rate"] / peak if peak else 0.0
        bar = "*" * max(0, round(share * width)) or "."
        lines.append(f"{row['interarrival_cycles']:>8.0f} {bar} "
                     f"{row['shed_rate'] * 100:.1f}% shed")
    return "\n".join(lines)


def fleet_table(rows: Sequence[dict], width: int = 40) -> str:
    """Render the sharded-fabric fleet-replay sweep.

    ``rows`` come from :func:`repro.serve.replay.sweep_fleet`: one dict
    per (offered load, shard count) point, grouped by load with shard
    counts ascending.  The scaling story: at a fixed offered load,
    adding shards drains queueing -- p99 falls and the shed rate
    collapses -- while per-call cycle charging stays bit-identical
    under the pure-charging serving discipline
    (``tests/serve/test_fleet_replay.py``).
    """
    if not rows:
        raise ValueError("no fleet sweep rows to render")
    header = (f"{'interarrival':>12} {'shards':>6} {'offered':>8} "
              f"{'ok':>6} {'shed %':>7} {'p50 cyc':>9} {'p99 cyc':>9} "
              f"{'thr/Mcyc':>9} {'rerouted':>8} {'wdog':>5}")
    lines = [f"fleet replay sweep ({rows[0]['workload']} workload, "
             "open-loop arrivals, hottest load last)",
             header, "-" * len(header)]
    previous_load = None
    for row in rows:
        if (previous_load is not None
                and row["interarrival_cycles"] != previous_load):
            lines.append("")
        previous_load = row["interarrival_cycles"]
        lines.append(
            f"{row['interarrival_cycles']:>12.0f} {row['shards']:>6} "
            f"{row['offered']:>8,} {row['succeeded']:>6,} "
            f"{row['shed_rate'] * 100:>6.1f}% "
            f"{row['p50_cycles']:>9.0f} {row['p99_cycles']:>9.0f} "
            f"{row['throughput_per_mcycle']:>9.1f} "
            f"{row['fallback_routes']:>8,} {row['watchdog_aborts']:>5,}")
    hottest = min(row["interarrival_cycles"] for row in rows)
    hot = [row for row in rows if row["interarrival_cycles"] == hottest]
    peak = max(row["p99_cycles"] for row in hot)
    lines.append("")
    lines.append(f"p99 at the hottest load (interarrival {hottest:.0f}):")
    for row in hot:
        share = row["p99_cycles"] / peak if peak else 0.0
        bar = "*" * max(1, round(share * width))
        lines.append(f"{row['shards']:>4} shard(s) {bar} "
                     f"{row['p99_cycles']:,.0f} cyc")
    return "\n".join(lines)


def resize_table(rows: Sequence[dict]) -> str:
    """Render the resized fleet replays (ISSUE 8 acceptance figure).

    ``rows`` come from :func:`repro.serve.replay.resize_row`: one dict
    per (workload, offered load) replay across an online ring resize.
    The two boolean columns *are* the acceptance criteria -- ``drops``
    must read 0 (per-tenant accounting identity) and ``bit-id`` must
    read yes (unmoved tenants charged identically to the no-resize
    replay).
    """
    if not rows:
        raise ValueError("no resize rows to render")
    header = (f"{'workload':<9} {'interarrival':>12} {'offered':>8} "
              f"{'ok':>6} {'migr':>5} {'drops':>5} {'p99 cyc':>9} "
              f"{'moved':>5} {'defl':>5} {'bit-id':>6}")
    lines = ["resized fleet replay (online 2 -> 3 shard grow, "
             "mid-stream)", header, "-" * len(header)]
    for row in rows:
        drops = row["offered"] - (row["shed"] + row["failed"]
                                  + row["succeeded"] + row["migrated"])
        lines.append(
            f"{row['workload']:<9} {row['interarrival_cycles']:>12.0f} "
            f"{row['offered']:>8,} {row['succeeded']:>6,} "
            f"{row['migrated']:>5,} {drops:>5,} "
            f"{row['p99_cycles']:>9.0f} "
            f"{len(row['moved_tenants']):>5} "
            f"{row['warmup_deflections']:>5,} "
            f"{'yes' if row['unmoved_bit_identical'] else 'NO':>6}")
    return "\n".join(lines)


def scaling_table(rows: Sequence[dict], width: int = 30) -> str:
    """Render the host-parallel scaling rows (``--fleet --jobs N``).

    ``rows`` come from :func:`repro.bench.fleet.measure_scaling`: one
    row per jobs level over the same seeded replay.  ``bit-id`` is the
    acceptance column -- every parallel row's charging digest must
    equal the serial one.  ``ideal`` is the LPT bound the shard balance
    supports; ``meas`` approaches it only when the machine has at least
    ``jobs`` usable cores (the ``cores`` column says what this run
    could use).
    """
    if not rows:
        raise ValueError("no scaling rows to render")
    header = (f"{'jobs':>4} {'mode':<9} {'shards':>6} {'wall s':>8} "
              f"{'meas x':>7} {'ideal x':>8} {'cores':>5} "
              f"{'deviations':>10} {'bit-id':>6}")
    first = rows[0]
    lines = [f"host-parallel scaling ({first['messages']:,} messages, "
             f"{first['tenants']} tenants, one worker per shard)",
             header, "-" * len(header)]
    for row in rows:
        ideal = row.get("ideal_speedup")
        ideal_text = "--".rjust(8) if ideal is None else f"{ideal:>7.2f}x"
        lines.append(
            f"{row['jobs']:>4} {row['mode']:<9} {row['shards']:>6} "
            f"{row['wall_seconds']:>8.2f} {row['speedup']:>6.2f}x "
            f"{ideal_text} {row['cores']:>5} "
            f"{row['route_deviations']:>10,} "
            f"{'yes' if row['cycles_identical'] else 'NO':>6}")
    peak = max((row.get("ideal_speedup") or 1.0) for row in rows)
    lines.append("")
    lines.append("ideal (LPT) speedup by jobs:")
    for row in rows:
        value = row.get("ideal_speedup") or 1.0
        share = value / peak if peak else 0.0
        bar = "*" * max(1, round(share * width))
        lines.append(f"{row['jobs']:>4} job(s) {bar} {value:.2f}x")
    return "\n".join(lines)


def speedup_summary(results: Sequence[BenchmarkResult]) -> dict[str, float]:
    """Geomean accelerator speedups vs each baseline (the paper's
    headline "NxM" numbers)."""
    return {
        "vs riscv-boom": geomean(
            r.gbps("riscv-boom-accel") / r.gbps("riscv-boom")
            for r in results),
        "vs Xeon": geomean(
            r.gbps("riscv-boom-accel") / r.gbps("Xeon") for r in results),
    }


def transport_table(rows: Sequence[dict]) -> str:
    """Render the RoCC-vs-PCIe attach-point sweep.

    ``rows`` come from :func:`repro.bench.transport.sweep_transports`:
    one dict per (message size, batch size) cell.  Protocol-work cycles
    are identical across transports by construction (the sweep asserts
    it), so the table shows only the attach-point costs: amortised
    transport cycles per operation on each transport, and which one
    wins on total cycles.
    """
    if not rows:
        raise ValueError("no transport sweep rows to render")
    header = (f"{'size B':>7} {'batch':>6} {'unit cyc':>10} "
              f"{'rocc/op':>9} {'pcie/op':>9} {'winner':>7}")
    lines = [f"transport sweep ({rows[0]['operation']}, attach-point "
             "cycles per op; unit cycles identical across transports)",
             header, "-" * len(header)]
    previous_size = None
    for row in rows:
        if previous_size is not None and row["size"] != previous_size:
            lines.append("")
        previous_size = row["size"]
        winner = "pcie" if row["pcie_wins"] else "rocc"
        lines.append(
            f"{row['size']:>7} {row['batch']:>6} {row['cycles']:>10.1f} "
            f"{row['rocc_transport_per_op']:>9.2f} "
            f"{row['pcie_transport_per_op']:>9.2f} {winner:>7}")
    return "\n".join(lines)


def transport_crossover_table(crossovers: Sequence[dict]) -> str:
    """Render the per-size PCIe crossover batch (the headline table).

    ``crossovers`` come from :func:`repro.bench.transport.
    crossover_batches`: per message size, the smallest swept batch where
    PCIe's total cycles match or beat RoCC's, or ``never`` when the
    per-byte link charge exceeds the RoCC dispatch cost at any batch.
    """
    if not crossovers:
        raise ValueError("no crossover rows to render")
    header = (f"{'size B':>7} {'crossover batch':>16} "
              f"{'rocc/op @max':>13} {'pcie/op @max':>13}")
    lines = [f"PCIe crossover vs message size "
             f"({crossovers[0]['operation']}, max batch "
             f"{crossovers[0]['max_batch']})",
             header, "-" * len(header)]
    for row in crossovers:
        crossover = (str(row["crossover_batch"])
                     if row["crossover_batch"] is not None else "never")
        lines.append(
            f"{row['size']:>7} {crossover:>16} "
            f"{row['rocc_per_op_at_max_batch']:>13.2f} "
            f"{row['pcie_per_op_at_max_batch']:>13.2f}")
    return "\n".join(lines)


def codegen_speedup_table(rows: Sequence[dict]) -> str:
    """Render the codegen-vs-interpreter host-time microbenchmark.

    ``rows`` come from :func:`repro.bench.microbench.
    time_codegen_microbench`: one dict per (field-type case, operation)
    with best-of-N wall-clock seconds on each execution tier.  These are
    *simulation host* seconds -- modeled accelerator cycles are
    bit-identical across tiers, which is the point: codegen buys wall
    clock, not cycles.
    """
    if not rows:
        raise ValueError("no codegen microbenchmark rows to render")
    header = (f"{'case':<10} {'operation':<12} {'interp s':>10} "
              f"{'codegen s':>10} {'speedup':>9}")
    lines = ["codegen vs interpreter (host wall-clock, modeled cycles "
             "identical)", header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['case']:<10} {row['operation']:<12} "
            f"{row['interp_seconds']:>10.4f} "
            f"{row['codegen_seconds']:>10.4f} "
            f"{row['speedup']:>8.2f}x")
    lines.append("-" * len(header))
    overall = geomean(row["speedup"] for row in rows)
    lines.append(f"{'geomean':<23} {'':>10} {'':>10} {overall:>8.2f}x")
    return "\n".join(lines)


def batch_speedup_table(rows: Sequence[dict]) -> str:
    """Render the batch-vs-interpreter whole-batch microbenchmark.

    ``rows`` come from :func:`repro.bench.microbench.
    time_batch_microbench`: one dict per (case, operation) with
    best-of-N host seconds per tier plus the batch tier's
    vectorized/fallback message counts for one call.  Modeled cycles
    are bit-identical across tiers; the batch tier buys wall clock by
    executing whole conforming batches per numpy call.
    """
    if not rows:
        raise ValueError("no batch microbenchmark rows to render")
    header = (f"{'case':<12} {'operation':<12} {'interp s':>10} "
              f"{'batch s':>10} {'speedup':>9}  {'vec/fb':>7}")
    lines = ["batch vs interpreter (host wall-clock, modeled cycles "
             "identical)", header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['case']:<12} {row['operation']:<12} "
            f"{row['interp_seconds']:>10.4f} "
            f"{row['batch_seconds']:>10.4f} "
            f"{row['speedup']:>8.2f}x  "
            f"{row['vectorized']:>3}/{row['fallbacks']}")
    lines.append("-" * len(header))
    for operation in ("deserialize", "serialize"):
        overall = geomean(row["speedup"] for row in rows
                          if row["operation"] == operation)
        lines.append(f"{'geomean ' + operation:<25} {'':>10} {'':>10} "
                     f"{overall:>8.2f}x")
    return "\n".join(lines)
