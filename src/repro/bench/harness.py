"""Parallel benchmark harness with a persistent on-disk result cache.

Figures 11-13 and the Section 5.1.3 sweep all reduce to "run one
workload's batch on the three systems"; this module makes those runs
(a) describable by a small picklable :class:`WorkloadSpec` so they can
fan out over a :class:`~concurrent.futures.ProcessPoolExecutor`, and
(b) memoisable across *processes* via JSON result files under
``results/.cache/``.

Both paths are bit-for-bit equivalent to the serial in-process run:

* Workload builders take explicit seeds, so a worker process rebuilds
  exactly the batch the parent would have (fork-safe, no global RNG).
* Disk-cache keys cover everything the result depends on -- the spec,
  the operation, the message type's structural fingerprint, a digest of
  the exact wire buffers, and the cost-model fingerprints of all three
  systems -- and JSON round-trips floats exactly (``repr`` shortest
  form), so a replayed :class:`SystemResult` equals the computed one to
  the last ULP.  ``tests/bench/test_harness.py`` asserts this.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.accel.driver import BatchCycleCache, buffers_digest
from repro.bench.microbench import build_microbench
from repro.bench.runner import (
    BenchmarkResult,
    SystemResult,
    Workload,
    run_deserialization,
    run_serialization,
)
from repro.cpu.boom import boom_cpu
from repro.cpu.xeon import xeon_cpu
from repro.hyperprotobench import build_hyperprotobench
from repro.proto.descriptor import structural_fingerprint
from repro.soc.config import SoCConfig

#: Bump when the cost models or result schema change in ways the key
#: fingerprints cannot see; stale disk entries then miss naturally.
CACHE_VERSION = 1

#: Default persistent result-cache directory (override per call or with
#: the REPRO_BENCH_CACHE environment variable).
DEFAULT_CACHE_DIR = Path("results") / ".cache"


@dataclass(frozen=True)
class HarnessOptions:
    """Process-wide knobs the ``python -m repro.bench`` CLI sets.

    ``fault_plan`` (a :class:`repro.faults.FaultPlan` or ``None``)
    injects faults into every accelerated run; it is picklable, so the
    worker-pool path carries it too.  ``fast_path`` selects the
    accelerator's host execution tier (``"codegen"``, ``"batch"``, or
    ``"interp"``); modeled cycles are bit-identical on every tier, so
    results and cache keys do not depend on it.  ``transport`` selects
    the accelerator's attach point (``"rocc"`` or ``"pcie"``); it only
    changes the reported ``transport_cycles``, and joins cache keys
    only when non-default so existing cache entries stay valid.
    """

    jobs: int = 1
    disk_cache: bool = True
    fault_plan: object = None
    fast_path: str = "codegen"
    transport: str = "rocc"


_OPTIONS = HarnessOptions()


def set_options(jobs: int = 1, disk_cache: bool = True,
                fault_plan=None, fast_path: str = "codegen",
                transport: str = "rocc") -> None:
    global _OPTIONS
    _OPTIONS = HarnessOptions(jobs=max(1, jobs), disk_cache=disk_cache,
                              fault_plan=fault_plan, fast_path=fast_path,
                              transport=transport)


def get_options() -> HarnessOptions:
    return _OPTIONS


#: In-process workload-construction cache.  Builders are deterministic
#: functions of (kind, name, batch, seed), benchmark code treats the
#: messages as immutable, and the deserialize/serialize specs of one
#: workload share its serialized buffers -- so one build serves every
#: spec that names it.
_WORKLOAD_CACHE: dict[tuple, Workload] = {}
_WORKLOAD_CACHE_LIMIT = 64
_WORKLOAD_CACHE_ENABLED = True


def set_workload_cache_enabled(enabled: bool) -> None:
    global _WORKLOAD_CACHE_ENABLED
    _WORKLOAD_CACHE_ENABLED = bool(enabled)
    if not enabled:
        _WORKLOAD_CACHE.clear()


@dataclass(frozen=True)
class WorkloadSpec:
    """A picklable recipe for one benchmark run.

    ``kind`` selects the builder family (``"micro"`` for the Figure 11
    protobuf-benchmarks types, ``"hyper"`` for HyperProtoBench);
    ``operation`` is ``"deserialize"`` or ``"serialize"``.
    """

    kind: str
    name: str
    operation: str
    batch: int
    seed: int = 0

    def build(self) -> Workload:
        key = (self.kind, self.name, self.batch, self.seed)
        if _WORKLOAD_CACHE_ENABLED:
            workload = _WORKLOAD_CACHE.get(key)
            if workload is not None:
                return workload
        if self.kind == "micro":
            workload = build_microbench(self.name, batch=self.batch)
        elif self.kind == "hyper":
            workload = build_hyperprotobench(self.name, seed=self.seed,
                                             batch=self.batch)
        else:
            raise ValueError(f"unknown workload kind {self.kind!r}")
        if _WORKLOAD_CACHE_ENABLED:
            if len(_WORKLOAD_CACHE) >= _WORKLOAD_CACHE_LIMIT:
                _WORKLOAD_CACHE.clear()
            _WORKLOAD_CACHE[key] = workload
        return workload


def _system_fingerprint() -> str:
    """Fingerprint of every cost model a benchmark result depends on."""
    return "|".join((
        repr(boom_cpu().params),
        repr(xeon_cpu().params),
        BatchCycleCache.config_fingerprint(SoCConfig()),
    ))


def cache_key(spec: WorkloadSpec, workload: Workload,
              faults=None, transport: str = "rocc") -> str:
    """Content-addressed key: spec + schema hash + buffers + configs.

    A fault plan's fingerprint joins the material only when injection is
    active, and the transport name only when non-default (the same
    keep-the-default-key-stable rule; RoCC results are unchanged by the
    transport subsystem, so they must not re-key).
    """
    parts = [
        f"v{CACHE_VERSION}",
        spec.kind, spec.name, spec.operation,
        str(spec.batch), str(spec.seed),
        structural_fingerprint(workload.descriptor),
        buffers_digest(workload.wire_buffers()).hex(),
        _system_fingerprint(),
    ]
    if faults is not None and faults.enabled():
        parts.append(faults.fingerprint())
    if transport != "rocc":
        parts.append(f"transport:{transport}")
    return hashlib.sha256("|".join(parts).encode()).hexdigest()


def _result_to_json(result: BenchmarkResult) -> dict:
    return {
        "workload": result.workload,
        "operation": result.operation,
        "results": {system: dataclasses.asdict(sr)
                    for system, sr in result.results.items()},
    }


def _result_from_json(payload: dict) -> BenchmarkResult:
    result = BenchmarkResult(payload["workload"], payload["operation"])
    for system, fields in payload["results"].items():
        result.results[system] = SystemResult(**fields)
    return result


def _cache_dir(cache_dir: Optional[Path]) -> Path:
    if cache_dir is not None:
        return Path(cache_dir)
    return Path(os.environ.get("REPRO_BENCH_CACHE", DEFAULT_CACHE_DIR))


def load_cached(key: str, cache_dir: Optional[Path] = None
                ) -> Optional[BenchmarkResult]:
    path = _cache_dir(cache_dir) / f"{key}.json"
    try:
        with open(path, encoding="utf-8") as handle:
            return _result_from_json(json.load(handle))
    except (OSError, ValueError, KeyError, TypeError):
        return None


def store_cached(key: str, result: BenchmarkResult,
                 cache_dir: Optional[Path] = None) -> None:
    directory = _cache_dir(cache_dir)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{key}.json"
    # Atomic publish: concurrent writers computing the same key write
    # identical bytes, so last-rename-wins is harmless.  mkstemp (not a
    # pid-suffixed name) keeps the scratch file unique even when two
    # threads of one process -- or a recycled pid -- race on the key.
    fd, tmp = tempfile.mkstemp(prefix=f".{key}.", suffix=".tmp",
                               dir=directory)
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(_result_to_json(result), indent=0))
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


_UNSET = object()


def run_spec(spec: WorkloadSpec, verify: bool = True,
             disk_cache: Optional[bool] = None,
             cache_dir: Optional[Path] = None,
             faults=_UNSET, fast_path: Optional[str] = None,
             transport: Optional[str] = None
             ) -> BenchmarkResult:
    """Run one spec, consulting/feeding the persistent result cache."""
    if disk_cache is None:
        disk_cache = _OPTIONS.disk_cache
    if faults is _UNSET:
        faults = _OPTIONS.fault_plan
    if fast_path is None:
        fast_path = _OPTIONS.fast_path
    if transport is None:
        transport = _OPTIONS.transport
    workload = spec.build()
    key = (cache_key(spec, workload, faults=faults, transport=transport)
           if disk_cache else None)
    if key is not None:
        cached = load_cached(key, cache_dir)
        if cached is not None:
            return cached
    if spec.operation == "deserialize":
        result = run_deserialization(workload, verify=verify, faults=faults,
                                     fast_path=fast_path,
                                     transport=transport)
    elif spec.operation == "serialize":
        result = run_serialization(workload, verify=verify, faults=faults,
                                   fast_path=fast_path, transport=transport)
    else:
        raise ValueError(f"unknown operation {spec.operation!r}")
    if key is not None and verify:
        store_cached(key, result, cache_dir)
    return result


def _pool_entry(args: tuple) -> BenchmarkResult:
    spec, verify, disk_cache, cache_dir, faults, fast_path, transport = args
    return run_spec(spec, verify=verify, disk_cache=disk_cache,
                    cache_dir=cache_dir, faults=faults, fast_path=fast_path,
                    transport=transport)


def run_many(specs: list[WorkloadSpec], jobs: Optional[int] = None,
             verify: bool = True, disk_cache: Optional[bool] = None,
             cache_dir: Optional[Path] = None,
             faults=_UNSET,
             fast_path: Optional[str] = None,
             transport: Optional[str] = None) -> list[BenchmarkResult]:
    """Run every spec, fanning across processes when ``jobs`` > 1.

    Results come back in spec order regardless of completion order, so
    downstream figure text is identical on every path.
    """
    if jobs is None:
        jobs = _OPTIONS.jobs
    if disk_cache is None:
        disk_cache = _OPTIONS.disk_cache
    if faults is _UNSET:
        faults = _OPTIONS.fault_plan
    if fast_path is None:
        fast_path = _OPTIONS.fast_path
    if transport is None:
        transport = _OPTIONS.transport
    if cache_dir is not None:
        cache_dir = Path(cache_dir)
    if jobs <= 1 or len(specs) <= 1:
        return [run_spec(spec, verify=verify, disk_cache=disk_cache,
                         cache_dir=cache_dir, faults=faults,
                         fast_path=fast_path, transport=transport)
                for spec in specs]
    payloads = [(spec, verify, disk_cache, cache_dir, faults, fast_path,
                 transport)
                for spec in specs]
    # Shared pool plumbing (repro.bench.pool): every worker runs the
    # common initializer -- harness options installed once, numpy and
    # the execution tiers imported, CPU models built -- so tasks never
    # pay a cold start.
    from repro.bench.pool import make_pool
    options = HarnessOptions(jobs=jobs, disk_cache=disk_cache,
                             fault_plan=faults, fast_path=fast_path,
                             transport=transport)
    with make_pool(min(jobs, len(specs)), options=options) as pool:
        return list(pool.map(_pool_entry, payloads))
