"""The three-system benchmark runner.

Runs one workload's timed batch on the paper's three systems --
``riscv-boom`` (software on the BOOM SoC), ``Xeon`` (software on the
server), and ``riscv-boom-accel`` (the accelerated SoC) -- and reports
throughput as Gbit/s of serialized message data consumed (deserialization)
or produced (serialization), exactly the metric of Figures 11-13.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.accel.driver import (
    DESER_BATCH_CACHE,
    SER_BATCH_CACHE,
    ProtoAccelerator,
    buffers_digest,
)
from repro.cpu.boom import boom_cpu
from repro.cpu.model import SoftwareCpu
from repro.cpu.xeon import xeon_cpu
from repro.proto.descriptor import MessageDescriptor, structural_fingerprint
from repro.proto.message import Message
from repro.soc.config import SoCConfig

#: System labels in the paper's plotting order.
SYSTEMS = ("riscv-boom", "Xeon", "riscv-boom-accel")


@dataclass
class Workload:
    """A pre-populated batch of messages of one type."""

    name: str
    descriptor: MessageDescriptor
    messages: list[Message]
    _buffers: list[bytes] | None = field(default=None, repr=False,
                                         compare=False)

    def wire_buffers(self) -> list[bytes]:
        """Software-serialized form of every message (batch input for
        deserialization benchmarks).  Serialized once; messages are
        treated as immutable after workload construction."""
        if self._buffers is None:
            self._buffers = [message.serialize()
                             for message in self.messages]
        return self._buffers

    def total_wire_bytes(self) -> int:
        return sum(len(buffer) for buffer in self.wire_buffers())


@dataclass
class SystemResult:
    """One system's measurement on one workload.

    The fault counters are zero except on ``riscv-boom-accel`` runs with
    fault injection enabled; defaults keep old cached JSON loadable.
    """

    system: str
    gbits_per_second: float
    cycles: float
    wire_bytes: int
    #: Attach-point cost (RoCC dispatch or PCIe queue-pair mechanics),
    #: reported beside -- never inside -- ``cycles``: the headline
    #: Gbit/s metric stays transport-independent and bit-identical to
    #: pre-transport baselines.  Zero on the software systems.
    transport_cycles: float = 0.0
    faults_injected: int = 0
    transient_retries: int = 0
    cpu_fallbacks: int = 0
    wasted_accel_cycles: float = 0.0
    fallback_cpu_cycles: float = 0.0


@dataclass
class BenchmarkResult:
    """All three systems' results for one workload."""

    workload: str
    operation: str  # "deserialize" | "serialize"
    results: dict[str, SystemResult] = field(default_factory=dict)

    def gbps(self, system: str) -> float:
        return self.results[system].gbits_per_second

    def speedup(self, system: str,
                baseline: str = "riscv-boom") -> float:
        return self.gbps(system) / self.gbps(baseline)


def _software_deser(cpu: SoftwareCpu, workload: Workload,
                    buffers: list[bytes]) -> SystemResult:
    cycles = cpu.deserialize_batch_cycles(workload.descriptor, buffers)
    wire_bytes = sum(len(b) for b in buffers)
    return SystemResult(cpu.name, cpu.gbits_per_second(wire_bytes, cycles),
                        cycles, wire_bytes)


def _software_ser(cpu: SoftwareCpu, workload: Workload) -> SystemResult:
    cycles = cpu.serialize_batch_cycles(workload.messages,
                                        keys=workload.wire_buffers())
    wire_bytes = workload.total_wire_bytes()
    return SystemResult(cpu.name, cpu.gbits_per_second(wire_bytes, cycles),
                        cycles, wire_bytes)


def _fault_counters(accel: ProtoAccelerator) -> dict:
    fs = accel.fault_stats
    return {
        "faults_injected": fs.faults_injected,
        "transient_retries": fs.transient_retries,
        "cpu_fallbacks": fs.cpu_fallbacks,
        "wasted_accel_cycles": fs.wasted_accel_cycles,
        "fallback_cpu_cycles": fs.fallback_cpu_cycles,
    }


def _accel_deser(workload: Workload, buffers: list[bytes],
                 verify: bool, faults=None,
                 fast_path: str = "codegen",
                 transport: str = "rocc") -> SystemResult:
    config = SoCConfig(transport=transport)
    wire_bytes = sum(len(b) for b in buffers)
    inject = faults is not None and faults.enabled()
    if inject:
        # Decorrelate fault streams across workloads (each run builds a
        # fresh injector that replays its seed's RNG from the start).
        faults = faults.derive(workload.name, "deserialize")
    if not inject:
        # The batch cycle cache only memoises deterministic fault-free
        # runs; an injected run's cycles depend on the fault plan.
        key = DESER_BATCH_CACHE.make_key(
            config, structural_fingerprint(workload.descriptor),
            buffers_digest(buffers))
        cached = DESER_BATCH_CACHE.lookup(key)
        if cached is not None:
            # Replay the verified batch aggregate without re-simulating;
            # the first (mis-)run decoded and checked these exact buffers.
            stats, _ = cached
            return SystemResult(
                "riscv-boom-accel",
                config.gbits_per_second(wire_bytes, stats.cycles),
                stats.cycles, wire_bytes,
                transport_cycles=stats.transport_cycles)
    # fast_path only changes host wall-clock (modeled cycles are
    # bit-identical on both tiers), so batch-cache keys ignore it.
    accel = ProtoAccelerator(config=config, faults=faults,
                             fast_path=fast_path)
    accel.register_types([workload.descriptor])
    addresses, stats = accel.deserialize_batch(workload.descriptor, buffers)
    if verify:
        for addr, expected in zip(addresses, workload.messages):
            observed = accel.read_message(workload.descriptor, addr)
            if observed != expected:
                raise AssertionError(
                    f"{workload.name}: accelerator deserialization mismatch")
        if not inject:
            DESER_BATCH_CACHE.store(key, stats)
    return SystemResult(
        "riscv-boom-accel",
        accel.throughput_gbps(wire_bytes, stats.cycles),
        stats.cycles, wire_bytes,
        transport_cycles=stats.transport_cycles,
        **_fault_counters(accel))


def _accel_ser(workload: Workload, verify: bool, faults=None,
               fast_path: str = "codegen",
               transport: str = "rocc") -> SystemResult:
    config = SoCConfig(transport=transport)
    buffers = workload.wire_buffers()
    inject = faults is not None and faults.enabled()
    if inject:
        faults = faults.derive(workload.name, "serialize")
    if not inject:
        key = SER_BATCH_CACHE.make_key(
            config, structural_fingerprint(workload.descriptor),
            buffers_digest(buffers))
        cached = SER_BATCH_CACHE.lookup(key)
        if cached is not None:
            stats, wire_bytes = cached
            return SystemResult(
                "riscv-boom-accel",
                config.gbits_per_second(wire_bytes, stats.cycles),
                stats.cycles, wire_bytes,
                transport_cycles=stats.transport_cycles)
    accel = ProtoAccelerator(config=config, faults=faults,
                             fast_path=fast_path)
    accel.register_types([workload.descriptor])
    addresses = [accel.load_object(m) for m in workload.messages]
    outputs, stats = accel.serialize_batch(workload.descriptor, addresses)
    if verify:
        for output, message in zip(outputs, buffers):
            if output != message:
                raise AssertionError(
                    f"{workload.name}: accelerator output not wire-identical")
    wire_bytes = sum(len(o) for o in outputs)
    if verify and not inject:
        SER_BATCH_CACHE.store(key, stats, extra=wire_bytes)
    return SystemResult(
        "riscv-boom-accel",
        accel.throughput_gbps(wire_bytes, stats.cycles),
        stats.cycles, wire_bytes,
        transport_cycles=stats.transport_cycles,
        **_fault_counters(accel))


def run_deserialization(workload: Workload, verify: bool = True,
                        faults=None,
                        fast_path: str = "codegen",
                        transport: str = "rocc") -> BenchmarkResult:
    """Deserialize the workload's batch on all three systems.

    ``faults`` (a :class:`~repro.faults.FaultPlan` or ``None``) only
    affects the accelerated system; the software baselines model fault-
    free CPUs either way.  ``fast_path`` selects the accelerator's host
    execution tier (``"codegen"``, ``"batch"``, or ``"interp"``);
    modeled cycles are identical on every tier, so results do not
    depend on it.  ``transport`` selects the accelerator's attach point
    (``"rocc"`` or ``"pcie"``); it changes only the reported
    ``transport_cycles``, never the unit cycles or Gbit/s.
    """
    buffers = workload.wire_buffers()
    result = BenchmarkResult(workload.name, "deserialize")
    result.results["riscv-boom"] = _software_deser(boom_cpu(), workload,
                                                   buffers)
    result.results["Xeon"] = _software_deser(xeon_cpu(), workload, buffers)
    result.results["riscv-boom-accel"] = _accel_deser(
        workload, buffers, verify, faults=faults, fast_path=fast_path,
        transport=transport)
    return result


def run_serialization(workload: Workload, verify: bool = True,
                      faults=None,
                      fast_path: str = "codegen",
                      transport: str = "rocc") -> BenchmarkResult:
    """Serialize the workload's batch on all three systems."""
    result = BenchmarkResult(workload.name, "serialize")
    result.results["riscv-boom"] = _software_ser(boom_cpu(), workload)
    result.results["Xeon"] = _software_ser(xeon_cpu(), workload)
    result.results["riscv-boom-accel"] = _accel_ser(
        workload, verify, faults=faults, fast_path=fast_path,
        transport=transport)
    return result
