"""Microbenchmark definitions (Section 5.1 of the paper).

Each microbenchmark is a message type holding a fixed number of fields of
one protobuf field type, pre-populated into a batch:

- ``varint-0`` .. ``varint-10``: uint64 fields whose values encode to 1
  (value 0) through 10 varint bytes; five fields per message, so the
  middle-sized non-repeated varint benchmark sits near the fleet median
  message size (Figure 3).
- ``double``, ``float``: five fixed-width fields per message.
- ``varint-N-R``, ``double-R``, ``float-R``: repeated equivalents (five
  repeated fields per message, several elements each).
- ``string``, ``string_15``, ``string_long``, ``string_very_long``:
  one string field per message at sizes spanning the SSO boundary through
  the paper's largest bytes-field buckets.
- ``bool-SUB``, ``double-SUB``, ``string-SUB``: one sub-message field per
  message, exercising sub-message allocation/context handling.

A separate host-time microbenchmark (:func:`time_codegen_microbench`)
times the accelerator simulation's two execution tiers -- the schema-
specialized codegen kernels vs the interpretive FSM -- per field type.
Unlike everything above it measures *wall-clock seconds on the
simulation host*, not modeled cycles (those are bit-identical across
tiers by construction).
"""

from __future__ import annotations

import time

from repro.bench.runner import Workload
from repro.proto.descriptor import FieldDescriptor, MessageDescriptor, Schema
from repro.proto.message import Message
from repro.proto.types import FieldType, Label

#: Messages per timed batch.
DEFAULT_BATCH = 32

#: Fields per message for varint/double/float benches (Section 5.1).
_FIELDS_PER_MESSAGE = 5

#: Elements per repeated field in the -R benches.
_REPEATED_ELEMENTS = 8

_STRING_SIZES = {
    "string": 8,
    "string_15": 15,
    "string_long": 2048,
    "string_very_long": 32768,
}


def varint_value(encoded_bytes: int) -> int:
    """A uint64 whose varint encoding is exactly ``encoded_bytes`` long.

    ``varint-0`` denotes the value zero (still one wire byte but no
    payload bits) -- the paper's smallest bucket.
    """
    if encoded_bytes == 0:
        return 0
    if not 1 <= encoded_bytes <= 10:
        raise ValueError("varint benchmarks span 0..10 encoded bytes")
    if encoded_bytes == 1:
        return 1
    return 1 << 7 * (encoded_bytes - 1)


def nonalloc_bench_names() -> list[str]:
    """Benchmarks of Figures 11a/11b (no in-accelerator allocation)."""
    return [f"varint-{n}" for n in range(11)] + ["double", "float"]


def alloc_bench_names() -> list[str]:
    """Benchmarks of Figures 11c/11d (repeated/strings/sub-messages)."""
    return ([f"varint-{n}-R" for n in range(11)]
            + ["string", "string_15", "string_long", "string_very_long",
               "double-R", "float-R", "bool-SUB", "double-SUB",
               "string-SUB"])


def _scalar_message_type(name: str, field_type: FieldType,
                         count: int, repeated: bool) -> MessageDescriptor:
    label = Label.REPEATED if repeated else Label.OPTIONAL
    fields = [
        FieldDescriptor(name=f"f{i}", number=i, field_type=field_type,
                        label=label)
        for i in range(1, count + 1)
    ]
    return MessageDescriptor(name, fields)


def _sub_message_type(name: str,
                      inner_type: FieldType) -> tuple[MessageDescriptor,
                                                      MessageDescriptor]:
    inner = MessageDescriptor(
        f"{name}.Inner",
        [FieldDescriptor(name="v", number=1, field_type=inner_type)],
        full_name=f"{name}.Inner")
    outer = MessageDescriptor(
        name,
        [FieldDescriptor(name="sub", number=1, field_type=FieldType.MESSAGE,
                         type_name=f"{name}.Inner")])
    schema = Schema()
    schema.add_message(inner)
    schema.add_message(outer)
    schema.resolve()
    return outer, inner


def _scalar_value(field_type: FieldType, seed: int):
    if field_type is FieldType.DOUBLE:
        return 1.0 + seed * 0.5
    if field_type is FieldType.FLOAT:
        return 0.5 + seed * 0.25
    if field_type is FieldType.BOOL:
        return seed % 2 == 0
    raise ValueError(f"unexpected scalar type {field_type}")


def _populate_varint(descriptor: MessageDescriptor, encoded_bytes: int,
                     repeated: bool, batch: int) -> list[Message]:
    value = varint_value(encoded_bytes)
    messages = []
    for _ in range(batch):
        message = descriptor.new_message()
        for fd in descriptor.fields:
            if repeated:
                message[fd.name] = [value] * _REPEATED_ELEMENTS
            else:
                message[fd.name] = value
        messages.append(message)
    return messages


def _populate_scalar(descriptor: MessageDescriptor, field_type: FieldType,
                     repeated: bool, batch: int) -> list[Message]:
    messages = []
    for index in range(batch):
        message = descriptor.new_message()
        for slot, fd in enumerate(descriptor.fields):
            value = _scalar_value(field_type, index + slot)
            if repeated:
                message[fd.name] = [value] * _REPEATED_ELEMENTS
            else:
                message[fd.name] = value
        messages.append(message)
    return messages


def _populate_string(descriptor: MessageDescriptor, size: int,
                     batch: int) -> list[Message]:
    messages = []
    for index in range(batch):
        message = descriptor.new_message()
        payload = (chr(ord("a") + index % 26) * size)
        message["f1"] = payload
        messages.append(message)
    return messages


def _populate_sub(outer: MessageDescriptor, inner_type: FieldType,
                  batch: int) -> list[Message]:
    messages = []
    for index in range(batch):
        message = outer.new_message()
        sub = message.mutable("sub")
        if inner_type is FieldType.STRING:
            sub["v"] = "payload-" + "x" * 24
        else:
            sub["v"] = _scalar_value(inner_type, index)
        messages.append(message)
    return messages


def build_microbench(name: str, batch: int = DEFAULT_BATCH) -> Workload:
    """Construct the named microbenchmark's pre-populated workload."""
    if name.startswith("varint-"):
        repeated = name.endswith("-R")
        digits = name.removeprefix("varint-").removesuffix("-R")
        encoded_bytes = int(digits)
        descriptor = _scalar_message_type(
            name, FieldType.UINT64, _FIELDS_PER_MESSAGE, repeated)
        messages = _populate_varint(descriptor, encoded_bytes, repeated,
                                    batch)
        return Workload(name, descriptor, messages)
    if name in ("double", "float", "double-R", "float-R"):
        repeated = name.endswith("-R")
        field_type = (FieldType.DOUBLE if name.startswith("double")
                      else FieldType.FLOAT)
        descriptor = _scalar_message_type(
            name, field_type, _FIELDS_PER_MESSAGE, repeated)
        return Workload(name, descriptor,
                        _populate_scalar(descriptor, field_type, repeated,
                                         batch))
    if name in _STRING_SIZES:
        descriptor = _scalar_message_type(name, FieldType.STRING, 1,
                                          repeated=False)
        return Workload(name, descriptor,
                        _populate_string(descriptor, _STRING_SIZES[name],
                                         batch))
    if name.endswith("-SUB"):
        inner_type = {
            "bool-SUB": FieldType.BOOL,
            "double-SUB": FieldType.DOUBLE,
            "string-SUB": FieldType.STRING,
        }[name]
        outer, _ = _sub_message_type(name.replace("-SUB", "Sub"), inner_type)
        return Workload(name, outer, _populate_sub(outer, inner_type, batch))
    raise ValueError(f"unknown microbenchmark {name!r}")


#: Field-type cases of the codegen-vs-interpreter host-time benchmark.
CODEGEN_CASES = ("varint", "bytes", "submsg")


def build_codegen_case(case: str, batch: int = DEFAULT_BATCH) -> Workload:
    """One workload per codegen microbenchmark field-type case."""
    if case == "varint":
        descriptor = _scalar_message_type(
            "cg-varint", FieldType.UINT64, _FIELDS_PER_MESSAGE,
            repeated=False)
        return Workload("codegen-varint", descriptor,
                        _populate_varint(descriptor, 5, False, batch))
    if case == "bytes":
        descriptor = _scalar_message_type("cg-bytes", FieldType.BYTES, 1,
                                          repeated=False)
        messages = []
        for index in range(batch):
            message = descriptor.new_message()
            message["f1"] = bytes((index + i) & 0xFF for i in range(512))
            messages.append(message)
        return Workload("codegen-bytes", descriptor, messages)
    if case == "submsg":
        outer, _ = _sub_message_type("CgSub", FieldType.STRING)
        return Workload("codegen-submsg", outer,
                        _populate_sub(outer, FieldType.STRING, batch))
    raise ValueError(f"unknown codegen case {case!r}")


def time_codegen_microbench(cases=CODEGEN_CASES,
                            batch: int = DEFAULT_BATCH,
                            repeat: int = 3) -> list[dict]:
    """Wall-clock host seconds per tier, per field-type case.

    Returns one row per (case, operation) with ``interp_seconds``,
    ``codegen_seconds`` (best of ``repeat``), and ``speedup``.  Each
    tier gets a warm-up pass first so kernel compilation and ADT-cache
    population are excluded from the timed region.
    """
    from repro.accel.driver import ProtoAccelerator
    rows = []
    for case in cases:
        workload = build_codegen_case(case, batch)
        buffers = workload.wire_buffers()
        for operation in ("deserialize", "serialize"):
            seconds = {}
            for fast_path in ("interp", "codegen"):
                accel = ProtoAccelerator(fast_path=fast_path)
                accel.register_types([workload.descriptor])
                if operation == "deserialize":
                    def body():
                        for buffer in buffers:
                            accel.deserialize(workload.descriptor, buffer,
                                              auto_renew_arena=True)
                else:
                    addresses = [accel.load_object(m)
                                 for m in workload.messages]

                    def body():
                        for addr in addresses:
                            accel.serialize(workload.descriptor, addr)
                body()  # warm-up: compile kernels, fill caches
                best = float("inf")
                for _ in range(repeat):
                    start = time.perf_counter()
                    body()
                    best = min(best, time.perf_counter() - start)
                seconds[fast_path] = best
            rows.append({
                "case": case,
                "operation": operation,
                "interp_seconds": seconds["interp"],
                "codegen_seconds": seconds["codegen"],
                "speedup": (seconds["interp"] / seconds["codegen"]
                            if seconds["codegen"] else float("inf")),
            })
    return rows


def batch_bench_names() -> list[str]:
    """The regular micro grid: every Figure 11 case whose schema the
    batch-shape classifier accepts (flat numeric records -- the varint
    widths, double/float, and their repeated variants; strings and
    sub-messages stay on the scalar tiers)."""
    from repro.proto import batchwire
    names = []
    for name in nonalloc_bench_names() + alloc_bench_names():
        workload = build_microbench(name, batch=1)
        if batchwire.batch_eligible(workload.descriptor):
            names.append(name)
    return names


def time_batch_microbench(names=None, batch: int = DEFAULT_BATCH,
                          repeat: int = 3) -> list[dict]:
    """Wall-clock host seconds per tier over whole-batch driver calls.

    Times ``deserialize_batch``/``serialize_batch`` (the entry points
    the batch engine hooks) on the interp and batch tiers.  Returns one
    row per (case, operation) with best-of-``repeat`` seconds, the
    speedup, and the batch tier's vectorized/fallback message counts
    for one call.  Modeled cycles are bit-identical across tiers (the
    differential suite asserts it); this measures simulation-host time.
    """
    from repro.accel import tiers
    from repro.accel.driver import ProtoAccelerator
    rows = []
    for name in (batch_bench_names() if names is None else names):
        workload = build_microbench(name, batch=batch)
        buffers = workload.wire_buffers()
        for operation in ("deserialize", "serialize"):
            seconds = {}
            vectorized = fallbacks = 0
            for fast_path in ("interp", "batch"):
                accel = ProtoAccelerator(fast_path=fast_path)
                accel.register_types([workload.descriptor])
                if operation == "deserialize":
                    def body():
                        accel.reset_arenas()
                        accel.deserialize_batch(workload.descriptor,
                                                buffers)
                else:
                    addresses = [accel.load_object(m)
                                 for m in workload.messages]

                    def body():
                        accel.reset_arenas()
                        accel.serialize_batch(workload.descriptor,
                                              addresses)
                body()  # warm-up: kernels, plans, TLB, ADT cache
                if fast_path == "batch":
                    op = "deser" if operation == "deserialize" else "ser"
                    before = tiers.counters()[op]
                    body()
                    after = tiers.counters()[op]
                    vectorized = (after["batch-vector"]
                                  - before["batch-vector"])
                    fallbacks = (after["batch-scalar"]
                                 - before["batch-scalar"])
                best = float("inf")
                for _ in range(repeat):
                    start = time.perf_counter()
                    body()
                    best = min(best, time.perf_counter() - start)
                seconds[fast_path] = best
            rows.append({
                "case": name,
                "operation": operation,
                "interp_seconds": seconds["interp"],
                "batch_seconds": seconds["batch"],
                "speedup": (seconds["interp"] / seconds["batch"]
                            if seconds["batch"] else float("inf")),
                "vectorized": vectorized,
                "fallbacks": fallbacks,
            })
    return rows
