"""Python reproduction of "A Hardware Accelerator for Protocol Buffers".

The package is organised as one subpackage per subsystem of the paper:

- :mod:`repro.proto` -- a from-scratch proto2 implementation (schema parser,
  wire format, software serializer/deserializer, arenas).
- :mod:`repro.memory` -- a simulated flat memory holding C++-faithful object
  images (message layout, ``std::string`` with SSO, repeated fields).
- :mod:`repro.soc` -- RoCC command interface, TLB and bus models.
- :mod:`repro.accel` -- the protobuf accelerator: ADTs, sparse hasbits,
  memloader, deserializer and serializer units, and the ASIC model.
- :mod:`repro.cpu` -- mechanistic BOOM and Xeon software cost models.
- :mod:`repro.fleet` -- the fleet profiling study (Section 3 of the paper).
- :mod:`repro.hyperprotobench` -- the synthetic benchmark generator.
- :mod:`repro.bench` -- the evaluation harness regenerating every figure.
"""

__version__ = "1.0.0"
