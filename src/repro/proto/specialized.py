"""Schema-specialized CPU parse/serialize kernels (protoc-style codegen).

The C++ library the paper profiles is *generated* code: protoc emits a
per-message ``MergePartialFromCodedStream`` whose field dispatch is a
switch over expected tags, with varint decoding inlined at each case.
This module gives the Python CPU-reference path the same tier: for a
:class:`~repro.proto.descriptor.MessageDescriptor` it emits straight-line
Python source -- a flat ``while`` loop whose tag switch is unrolled into
per-field-number ``elif`` branches, varint decode inlined, values written
directly into the message's slot storage -- compiles it with
``compile()``/``exec``, and caches the kernels per descriptor.

Correctness contract: a specialized kernel must be observationally
identical to the interpretive path in :mod:`repro.proto.decoder` /
:mod:`repro.proto.encoder` -- same messages, same bytes, same exception
types and messages.  Rare paths (unknown fields, wire-type mismatches,
malformed keys) bail out to the *same* generic code
(:func:`repro.proto.decoder._parse_one_field`) so their behaviour is the
interpreter's by construction.  Kernels are only used when no
:class:`~repro.proto.trace.Trace` is attached; traced runs always take
the interpretive path so the CPU cost models see the canonical event
stream.

Descriptors are baked into the generated source by identity (the runtime
enforces ``child.descriptor is fd.message_type``), so the kernel cache is
keyed by descriptor identity and holds a strong reference to keep ids
stable; an LRU bound keeps it small.
"""

from __future__ import annotations

from collections import OrderedDict
from struct import pack as _struct_pack, unpack_from as _struct_unpack_from

from repro.proto.errors import DecodeError, EncodeError
from repro.proto.message import Message, RepeatedField
from repro.proto.types import FieldType, WireType
from repro.proto.varint import decode_varint, encode_varint, varint_length
from repro.proto.wire import encode_tag, tag_length

#: Struct format + width for the fixed-width field types.
_FIXED = {
    FieldType.DOUBLE: ("<d", 8),
    FieldType.FLOAT: ("<f", 4),
    FieldType.FIXED32: ("<I", 4),
    FieldType.FIXED64: ("<Q", 8),
    FieldType.SFIXED32: ("<i", 4),
    FieldType.SFIXED64: ("<q", 8),
}

_VARINT_TYPES = frozenset((
    FieldType.INT32, FieldType.INT64, FieldType.UINT32, FieldType.UINT64,
    FieldType.SINT32, FieldType.SINT64, FieldType.BOOL, FieldType.ENUM,
))

_SUPPORTED = (frozenset(_FIXED) | _VARINT_TYPES
              | {FieldType.STRING, FieldType.BYTES, FieldType.MESSAGE})

_M32 = (1 << 32) - 1
_M64 = (1 << 64) - 1

SPECIALIZED_CACHE_CAPACITY = 128

_ENABLED = True


def set_specialization_enabled(enabled: bool) -> None:
    """Toggle the CPU codegen tier (and drop compiled kernels when off)."""
    global _ENABLED
    _ENABLED = bool(enabled)
    if not _ENABLED:
        _CACHE.clear()


def specialization_enabled() -> bool:
    return _ENABLED


class _SpecializedCache:
    """LRU of per-descriptor kernel pairs, keyed by descriptor identity."""

    def __init__(self, capacity: int = SPECIALIZED_CACHE_CAPACITY):
        self.capacity = capacity
        self._entries: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0

    def lookup(self, descriptor):
        key = id(descriptor)
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            return entry[1]
        self.misses += 1
        kernels = _build_kernels(descriptor)
        # The strong descriptor reference keeps id() stable for the
        # lifetime of the cache entry.
        self._entries[key] = (descriptor, kernels)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        return kernels

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


_CACHE = _SpecializedCache()


def cache_counters() -> tuple[int, int, int, int]:
    """(hits, misses, entries, capacity) of the CPU kernel cache."""
    return (_CACHE.hits, _CACHE.misses, len(_CACHE), _CACHE.capacity)


def parser_for(descriptor):
    """The specialized parse kernel for ``descriptor``, or None.

    The kernel signature is ``fn(message, data, pos, end, arena,
    keep_unknown)`` with ``data`` a bytes-like object (the callers pass a
    memoryview over the whole input, as the interpreter does).
    """
    if not _ENABLED:
        return None
    kernels = _CACHE.lookup(descriptor)
    return kernels[0] if kernels is not None else None


def encoder_for(descriptor):
    """The specialized serialize kernel (``fn(message) -> bytes``)."""
    if not _ENABLED:
        return None
    kernels = _CACHE.lookup(descriptor)
    return kernels[1] if kernels is not None else None


def warm(schema) -> int:
    """Pre-compile kernels for every message type in a schema.

    Called from :func:`repro.proto.compiler.compile_schema` so generated
    wrapper classes hit warm kernels on their first parse/serialize.
    Returns the number of types with kernels available.
    """
    count = 0
    for descriptor in schema.messages():
        if _CACHE.lookup(descriptor) is not None:
            count += 1
    return count


# ---------------------------------------------------------------------------
# Source generation


def _type_order(root):
    """DFS over reachable message types -> ({id: index}, [descriptor])."""
    order: dict[int, int] = {}
    descs = []
    stack = [root]
    while stack:
        d = stack.pop()
        if id(d) in order:
            continue
        order[id(d)] = len(descs)
        descs.append(d)
        for fd in d.fields:
            if fd.field_type is FieldType.MESSAGE and fd.message_type is not None:
                if id(fd.message_type) not in order:
                    stack.append(fd.message_type)
    return order, descs


class _W:
    """Tiny indented source writer."""

    def __init__(self):
        self.lines: list[str] = []
        self.depth = 0

    def w(self, line: str = "") -> None:
        self.lines.append("    " * self.depth + line if line else "")

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


def _varint_transform(ft: FieldType, p: str) -> str:
    """Expression mapping varint payload ``p`` to the field's value.

    Each form replays the arithmetic of
    :func:`repro.proto.decoder._decode_varint_value` exactly.
    """
    if ft is FieldType.BOOL:
        return f"{p} != 0"
    if ft is FieldType.SINT64:
        return f"({p} >> 1) ^ -({p} & 1)"
    if ft is FieldType.SINT32:
        return (f"(((({p} >> 1) ^ -({p} & 1)) & {_M32}) ^ {1 << 31})"
                f" - {1 << 31}")
    if ft in (FieldType.INT32, FieldType.ENUM):
        return f"(({p} & {_M32}) ^ {1 << 31}) - {1 << 31}"
    if ft is FieldType.INT64:
        return (f"{p} - {1 << 64} if {p} >= {1 << 63} else {p}")
    if ft is FieldType.UINT32:
        return f"{p} & {_M32}"
    return p  # UINT64


def _varint_payload_expr(ft: FieldType, v: str) -> str:
    """Expression mapping value ``v`` to its unsigned varint payload.

    Values reaching the encoder passed ``_check_scalar`` validation, so
    the range checks in encode_signed/encode_zigzag cannot fire and the
    masks alone reproduce them.
    """
    if ft is FieldType.BOOL:
        return f"1 if {v} else 0"
    if ft in (FieldType.SINT32, FieldType.SINT64):
        return f"(({v} << 1) ^ ({v} >> 63)) & {_M64}"
    return f"{v} & {_M64}"


def _emit_inline_varint(w: _W, out: str) -> None:
    """Inline varint decode at ``pos`` into local ``out`` (advances pos).

    The one-byte fast path mirrors decode_varint's; multi-byte and
    truncated cases call decode_varint itself, so errors are identical.
    """
    w.w(f"if pos < dlen and data[pos] < 128:")
    w.w(f"    {out} = data[pos]; pos += 1")
    w.w("else:")
    w.w(f"    {out}, _c = dv(data, pos); pos += _c")


def _gen_parse_source(root) -> str:
    order, descs = _type_order(root)
    w = _W()
    for ti, d in enumerate(descs):
        w.w(f"def _p{ti}(msg, data, pos, end, arena, keep_unknown):")
        w.depth += 1
        w.w("values = msg._values")
        w.w("hasbits = msg._hasbits")
        w.w("dlen = len(data)")
        w.w("while pos < end:")
        w.depth += 1
        w.w("_b = data[pos]")
        w.w("if _b < 128:")
        w.w("    key = _b; npos = pos + 1")
        w.w("else:")
        w.w("    key, _c = dv(data, pos); npos = pos + _c")
        first = True
        for fd in d.fields:
            if fd.field_type not in _SUPPORTED:
                continue
            _emit_field_branches(w, order, ti, d, fd, first)
            first = False
        kw = "if" if first else "elif"
        w.w(f"{kw} True:")
        w.w("    pos = pof(msg, data, pos, end, None, arena, keep_unknown)")
        w.depth -= 1
        w.w("if pos != end:")
        w.w('    raise DecodeError("message payload overran its length")')
        w.depth -= 1
        w.w()
    return w.source()


def _emit_field_branches(w: _W, order, ti: int, d, fd, first: bool) -> None:
    ft = fd.field_type
    num = fd.number
    kw = "if" if first else "elif"
    if fd.is_repeated:
        tag = (num << 3) | int(fd.wire_type)
        w.w(f"{kw} key == {tag}:")
        w.depth += 1
        w.w("pos = npos")
        _emit_value_decode(w, order, ti, fd, "_val")
        _emit_repeated_append(w, ti, fd, "_val")
        w.w(f"hasbits.add({num})")
        w.depth -= 1
        if ft in _VARINT_TYPES or ft in _FIXED:
            # Packed encoding of a numeric repeated field; accepted
            # regardless of the declared option (proto2 rules).
            ptag = (num << 3) | int(WireType.LENGTH_DELIMITED)
            w.w(f"elif key == {ptag}:")
            w.depth += 1
            w.w("pos = npos")
            _emit_inline_varint(w, "_pl")
            w.w("_pend = pos + _pl")
            w.w("if _pend > dlen:")
            w.w(f'    raise DecodeError("field {fd.name}: '
                'truncated packed field")')
            _emit_repeated_fetch(w, ti, fd)
            w.w("while pos < _pend:")
            w.depth += 1
            _emit_value_decode(w, order, ti, fd, "_val")
            w.w("_rl.append(_val)")
            w.depth -= 1
            w.w("if pos != _pend:")
            w.w(f'    raise DecodeError("field {fd.name}: '
                'packed payload overran")')
            w.w(f"hasbits.add({num})")
            w.depth -= 1
        return
    tag = (num << 3) | int(fd.wire_type)
    w.w(f"{kw} key == {tag}:")
    w.depth += 1
    w.w("pos = npos")
    _emit_value_decode(w, order, ti, fd, "_val")
    if ft is FieldType.MESSAGE:
        # proto2 merge semantics for repeated occurrences of a singular
        # sub-message field.
        w.w(f"if {num} in hasbits:")
        w.w(f"    values[{num}].merge_from(_val)")
        w.w("else:")
        w.depth += 1
        _emit_oneof_clear(w, d, fd)
        w.w(f"values[{num}] = _val")
        w.w(f"hasbits.add({num})")
        w.depth -= 1
    else:
        _emit_oneof_clear(w, d, fd)
        w.w(f"values[{num}] = _val")
        w.w(f"hasbits.add({num})")
    w.depth -= 1


def _emit_oneof_clear(w: _W, d, fd) -> None:
    if fd.oneof_group is None:
        return
    for sibling in d.oneof_siblings(fd.number):
        w.w(f"values.pop({sibling}, None); hasbits.discard({sibling})")


def _emit_repeated_fetch(w: _W, ti: int, fd) -> None:
    w.w(f"_rf = values.get({fd.number})")
    w.w("if _rf is None:")
    w.w(f"    _rf = RF(_fd_{ti}_{fd.number}); values[{fd.number}] = _rf")
    w.w("_rl = _rf._items")


def _emit_repeated_append(w: _W, ti: int, fd, val: str) -> None:
    _emit_repeated_fetch(w, ti, fd)
    w.w(f"_rl.append({val})")


def _emit_value_decode(w: _W, order, ti: int, fd, val: str) -> None:
    """Emit decode of one element's value at ``pos`` into ``val``."""
    ft = fd.field_type
    if ft in _FIXED:
        fmt, width = _FIXED[ft]
        w.w(f"if pos + {width} > dlen:")
        w.w(f'    raise DecodeError("field {fd.name}: '
            'truncated fixed value")')
        w.w(f"{val} = up({fmt!r}, data, pos)[0]")
        w.w(f"pos += {width}")
        return
    if ft in (FieldType.STRING, FieldType.BYTES):
        _emit_inline_varint(w, "_ln")
        w.w("_sv = pos + _ln")
        w.w("if _sv > dlen:")
        w.w(f'    raise DecodeError("field {fd.name}: '
            'truncated string/bytes")')
        w.w("_raw = data[pos:_sv]")
        w.w("pos = _sv")
        if ft is FieldType.BYTES:
            w.w(f"{val} = bytes(_raw)")
            return
        w.w("try:")
        w.w(f'    {val} = str(_raw, "utf-8")')
        w.w("except UnicodeDecodeError:")
        w.depth += 1
        # validate_utf8 is consulted at run time (not baked) because the
        # test suite flips it on live descriptors.
        w.w(f"if _fd_{ti}_{fd.number}.validate_utf8:")
        w.w(f'    raise DecodeError("field {fd.name}: invalid UTF-8 in '
            'proto3 string") from None')
        w.w(f'{val} = str(_raw, "latin-1")')
        w.depth -= 1
        return
    if ft is FieldType.MESSAGE:
        tj = order[id(fd.message_type)]
        _emit_inline_varint(w, "_ln")
        w.w("_sv = pos + _ln")
        w.w("if _sv > dlen:")
        w.w(f'    raise DecodeError("field {fd.name}: '
            'truncated sub-message")')
        w.w(f"{val} = Msg(_mt_{ti}_{fd.number}, arena=arena)")
        w.w(f"_p{tj}({val}, data, pos, _sv, arena, keep_unknown)")
        w.w("pos = _sv")
        return
    # Varint scalar.
    _emit_inline_varint(w, "_pv")
    w.w(f"{val} = {_varint_transform(ft, '_pv')}")


# -- serialize side ---------------------------------------------------------


def _scalar_size_expr(fd, v: str) -> str:
    """Size expression for one element value (no key, no outer prefix)."""
    ft = fd.field_type
    if ft in _FIXED:
        return str(_FIXED[ft][1])
    if ft is FieldType.BYTES:
        return f"vl(len({v})) + len({v})"
    return f"vl({_varint_payload_expr(ft, v)})"


def _gen_encode_source(root) -> str:
    order, descs = _type_order(root)
    w = _W()
    for ti, d in enumerate(descs):
        _gen_size_fn(w, order, ti, d)
        _gen_emit_fn(w, order, ti, d)
    w.w("def _encode_entry(msg):")
    w.depth += 1
    w.w("memo = []")
    w.w("expected = _sz0(msg, memo)")
    w.w("out = bytearray()")
    w.w("_e0(msg, out, memo, 0)")
    w.w("if len(out) != expected:")
    w.w("    raise EncodeError(")
    w.w('        f"ByteSize pass predicted {expected} bytes but encoder '
        'wrote "')
    w.w('        f"{len(out)} -- internal inconsistency")')
    w.w("return bytes(out)")
    w.depth -= 1
    return w.source()


def _gen_size_fn(w: _W, order, ti: int, d) -> None:
    """The ByteSize pass: sub-message body sizes and encoded strings are
    stashed in ``memo`` in pre-order so the emit pass replays them
    without recomputation (the C++ library's cached-size trick)."""
    w.w(f"def _sz{ti}(msg, memo):")
    w.depth += 1
    w.w("values = msg._values")
    w.w("hasbits = msg._hasbits")
    w.w("total = 0")
    for fd in d.fields:
        if fd.field_type not in _SUPPORTED:
            continue
        _emit_size_field(w, order, ti, fd)
    w.w("for _num, _wv, _vb in msg._unknown:")
    w.w("    total += tl(_num, WT(_wv)) + len(_vb)")
    w.w("return total")
    w.depth -= 1
    w.w()


def _emit_size_field(w: _W, order, ti: int, fd) -> None:
    ft = fd.field_type
    num = fd.number
    outer = (WireType.LENGTH_DELIMITED if fd.is_repeated and fd.packed
             else fd.wire_type)
    key_len = tag_length(num, outer)
    if not fd.is_repeated:
        w.w(f"if {num} in hasbits:")
        w.depth += 1
        w.w(f"_v = values[{num}]")
        if ft is FieldType.MESSAGE:
            tj = order[id(fd.message_type)]
            w.w("_i = len(memo); memo.append(0)")
            w.w(f"_ct = _sz{tj}(_v, memo)")
            w.w("memo[_i] = _ct")
            w.w(f"total += {key_len} + vl(_ct) + _ct")
        elif ft is FieldType.STRING:
            w.w('_enc = _v.encode("utf-8")')
            w.w("memo.append(_enc)")
            w.w(f"total += {key_len} + vl(len(_enc)) + len(_enc)")
        else:
            w.w(f"total += {key_len} + {_scalar_size_expr(fd, '_v')}")
        w.depth -= 1
        return
    w.w(f"_rf = values.get({num})")
    w.w("if _rf is not None and _rf._items:")
    w.depth += 1
    w.w("_li = _rf._items")
    if fd.packed:
        w.w("_i = len(memo); memo.append(0)")
        if ft in _FIXED:
            w.w(f"_pl = {_FIXED[ft][1]} * len(_li)")
        else:
            w.w("_pl = 0")
            w.w("for _v in _li:")
            w.w(f"    _pl += {_scalar_size_expr(fd, '_v')}")
        w.w("memo[_i] = _pl")
        w.w(f"total += {key_len} + vl(_pl) + _pl")
    elif ft is FieldType.MESSAGE:
        tj = order[id(fd.message_type)]
        w.w("for _v in _li:")
        w.depth += 1
        w.w("_i = len(memo); memo.append(0)")
        w.w(f"_ct = _sz{tj}(_v, memo)")
        w.w("memo[_i] = _ct")
        w.w(f"total += {key_len} + vl(_ct) + _ct")
        w.depth -= 1
    elif ft is FieldType.STRING:
        w.w("for _v in _li:")
        w.w('    _enc = _v.encode("utf-8")')
        w.w("    memo.append(_enc)")
        w.w(f"    total += {key_len} + vl(len(_enc)) + len(_enc)")
    elif ft in _FIXED:
        w.w(f"total += ({key_len} + {_FIXED[ft][1]}) * len(_li)")
    else:
        w.w("for _v in _li:")
        w.w(f"    total += {key_len} + {_scalar_size_expr(fd, '_v')}")
    w.depth -= 1


def _gen_emit_fn(w: _W, order, ti: int, d) -> None:
    w.w(f"def _e{ti}(msg, out, memo, mi):")
    w.depth += 1
    w.w("values = msg._values")
    w.w("hasbits = msg._hasbits")
    for fd in d.fields:
        if fd.field_type not in _SUPPORTED:
            continue
        _emit_encode_field(w, order, ti, fd)
    w.w("for _num, _wv, _vb in msg._unknown:")
    w.w("    out += et(_num, WT(_wv))")
    w.w("    out += _vb")
    w.w("return mi")
    w.depth -= 1
    w.w()


def _emit_varint_out(w: _W, payload: str) -> None:
    w.w(f"_pl = {payload}")
    w.w("if _pl < 128:")
    w.w("    out.append(_pl)")
    w.w("else:")
    w.w("    out += ev(_pl)")


def _emit_length_out(w: _W, length: str) -> None:
    w.w(f"if {length} < 128:")
    w.w(f"    out.append({length})")
    w.w("else:")
    w.w(f"    out += ev({length})")


def _emit_encode_field(w: _W, order, ti: int, fd) -> None:
    ft = fd.field_type
    num = fd.number
    outer = (WireType.LENGTH_DELIMITED if fd.is_repeated and fd.packed
             else fd.wire_type)
    key = encode_tag(num, outer)
    if not fd.is_repeated:
        w.w(f"if {num} in hasbits:")
        w.depth += 1
        w.w(f"_v = values[{num}]")
        w.w(f"out += {key!r}")
        _emit_scalar_out(w, order, ti, fd, "_v")
        w.depth -= 1
        return
    w.w(f"_rf = values.get({num})")
    w.w("if _rf is not None and _rf._items:")
    w.depth += 1
    w.w("_li = _rf._items")
    if fd.packed:
        w.w(f"out += {key!r}")
        w.w("_pl = memo[mi]; mi += 1")
        _emit_length_out(w, "_pl")
        w.w("for _v in _li:")
        w.depth += 1
        _emit_scalar_out(w, order, ti, fd, "_v")
        w.depth -= 1
    else:
        w.w("for _v in _li:")
        w.depth += 1
        w.w(f"out += {key!r}")
        _emit_scalar_out(w, order, ti, fd, "_v")
        w.depth -= 1
    w.depth -= 1


def _emit_scalar_out(w: _W, order, ti: int, fd, v: str) -> None:
    """Emit one element's value bytes (no key) for ``v``."""
    ft = fd.field_type
    if ft in _FIXED:
        fmt, _ = _FIXED[ft]
        w.w(f"out += pk({fmt!r}, {v})")
        return
    if ft is FieldType.STRING:
        w.w("_enc = memo[mi]; mi += 1")
        w.w("_ln = len(_enc)")
        _emit_length_out(w, "_ln")
        w.w("out += _enc")
        return
    if ft is FieldType.BYTES:
        w.w(f"_ln = len({v})")
        _emit_length_out(w, "_ln")
        w.w(f"out += {v}")
        return
    if ft is FieldType.MESSAGE:
        tj = order[id(fd.message_type)]
        w.w("_ct = memo[mi]; mi += 1")
        _emit_length_out(w, "_ct")
        w.w(f"mi = _e{tj}({v}, out, memo, mi)")
        return
    _emit_varint_out(w, _varint_payload_expr(ft, v))


# ---------------------------------------------------------------------------
# Compilation


def _build_kernels(root):
    """Compile (parser, encoder) for ``root``; None when unsupported.

    The parse side could fall back per-field, but the size/emit pass has
    no per-field escape hatch, so any unsupported field type disables
    specialization for the whole root type.
    """
    for d in _type_order(root)[1]:
        for fd in d.fields:
            if fd.field_type not in _SUPPORTED:
                return None
    try:
        parse_src = _gen_parse_source(root)
        encode_src = _gen_encode_source(root)
        namespace = _namespace(root)
        exec(compile(parse_src, f"<specialized-parse:{root.full_name}>",
                     "exec"), namespace)
        exec(compile(encode_src, f"<specialized-encode:{root.full_name}>",
                     "exec"), namespace)
        namespace["__parse_source__"] = parse_src
        namespace["__encode_source__"] = encode_src
    except Exception:
        return None
    return namespace["_p0"], namespace["_encode_entry"]


def _namespace(root) -> dict:
    order, descs = _type_order(root)
    from repro.proto.decoder import _parse_one_field
    namespace: dict = {
        "dv": decode_varint,
        "ev": encode_varint,
        "vl": varint_length,
        "tl": tag_length,
        "et": encode_tag,
        "up": _struct_unpack_from,
        "pk": _struct_pack,
        "WT": WireType,
        "Msg": Message,
        "RF": RepeatedField,
        "DecodeError": DecodeError,
        "EncodeError": EncodeError,
        "pof": _parse_one_field,
    }
    for ti, d in enumerate(descs):
        for fd in d.fields:
            if fd.field_type is FieldType.MESSAGE:
                namespace[f"_mt_{ti}_{fd.number}"] = fd.message_type
            if fd.is_repeated or fd.field_type is FieldType.STRING:
                namespace[f"_fd_{ti}_{fd.number}"] = fd
    return namespace

# ---------------------------------------------------------------------------
# Batch (vectorized) tier -- the CPU mirror of repro.accel.batchgen

# The accelerator's batch engine gets its ≥10x from executing whole
# same-schema batches per call; to keep the accel-vs-CPU comparison
# honest the software library grows the same tier.  The wire-structure
# machinery is shared (repro.proto.batchwire): the first message of a
# batch parses/serializes scalar and becomes the template; every later
# message that structurally conforms is decoded from a stacked numpy
# byte matrix (parallel varint gather, strided fixed-width views) or
# encoded by patching the template's value bytes.  Irregular messages
# fall back to the scalar kernels per message, so behaviour -- values,
# presence, errors -- is the scalar path's by construction.


def batch_enabled() -> bool:
    """True when the CPU batch tier can vectorize (numpy + kernels on)."""
    from repro.proto import batchwire
    return _ENABLED and batchwire.numpy_available()


def parse_batch(descriptor, buffers, keep_unknown: bool = False):
    """Parse a batch of same-type wire buffers; returns Messages.

    Observationally identical to calling
    :func:`repro.proto.decoder.parse_message` per buffer (same values,
    presence, and exceptions, raised at the same batch position).
    """
    from repro.proto import batchwire
    from repro.proto.decoder import _decode_varint_value, parse_message
    np = batchwire.np
    vector_ok = (np is not None and _ENABLED and len(buffers) >= 2
                 and batchwire.batch_eligible(descriptor))
    results = []
    prepared = None
    for index, data in enumerate(buffers):
        if prepared is not None:
            row = prepared.get(index)
            if row is not None:
                results.append(row())
                continue
        data = bytes(data)
        message = parse_message(descriptor, data,
                                keep_unknown=keep_unknown)
        results.append(message)
        if vector_ok and prepared is None:
            plan = batchwire.template_wire_plan(descriptor, data)
            if plan is not None and not plan.has_unknown:
                prepared = _prepare_parse_rows(descriptor, plan, data,
                                               buffers, index + 1,
                                               _decode_varint_value, np)
    return results


def _prepare_parse_rows(descriptor, plan, template, buffers, start,
                        decode_value, np):
    """Vectorized decode of every conforming buffer past the anchor.

    Returns {batch index: zero-arg Message builder} for the rows the
    template covers; everything else stays on the scalar path.
    """
    from repro.proto import batchwire
    length = len(template)
    candidates = [i for i in range(start, len(buffers))
                  if len(buffers[i]) == length]
    if not candidates:
        return {}
    matrix = batchwire.stack_rows([bytes(buffers[i]) for i in candidates])
    ok = batchwire.conforming_rows(
        matrix, np.frombuffer(template, dtype=np.uint8),
        np.frombuffer(plan.mask, dtype=np.uint8))
    conforming = [i for i, good in zip(candidates, ok) if good]
    if not conforming:
        return {}
    if len(conforming) < len(candidates):
        matrix = matrix[ok]
    # Decode values column-at-a-time: one numpy gather per field/element
    # run, then the decoder's exact per-value transform.
    singular_cols = []
    for op in plan.singular_ops:
        fd = descriptor.field_by_number(op.number)
        if op.kind == "fixed":
            fmt = _FIXED[fd.field_type][0]
            column = [
                _struct_unpack_from(fmt, matrix[j, op.start:].tobytes())[0]
                for j in range(len(conforming))
            ]
        else:
            payload = batchwire.gather_varint(matrix, op.start, op.length)
            column = [decode_value(fd, int(p)) for p in payload]
        singular_cols.append((fd, column))
    repeated_cols = []
    for number, spec in plan.repeated.items():
        fd = descriptor.field_by_number(number)
        columns = []
        for element in spec.elements:
            if spec.kind == "fixed":
                fmt = _FIXED[fd.field_type][0]
                columns.append([
                    _struct_unpack_from(
                        fmt, matrix[j, element.start:].tobytes())[0]
                    for j in range(len(conforming))
                ])
            else:
                payload = batchwire.gather_varint(matrix, element.start,
                                                  element.length)
                columns.append([decode_value(fd, int(p)) for p in payload])
        repeated_cols.append((fd, columns))

    def build(j):
        message = Message(descriptor)
        values = message._values
        hasbits = message._hasbits
        for fd, column in singular_cols:
            values[fd.number] = column[j]
            hasbits.add(fd.number)
        for fd, columns in repeated_cols:
            repeated = RepeatedField(fd)
            repeated._items = [column[j] for column in columns]
            values[fd.number] = repeated
            hasbits.add(fd.number)
        return message

    return {index: (lambda j=j: build(j))
            for j, index in enumerate(conforming)}


def encode_batch(descriptor, messages):
    """Serialize a batch of same-type messages; returns wire bytes.

    Observationally identical to per-message
    :func:`repro.proto.encoder.serialize_message` (required-field checks
    included, raised at the same batch position).
    """
    from repro.proto import batchwire
    from repro.proto.encoder import _varint_payload, serialize_message
    np = batchwire.np
    vector_ok = (np is not None and _ENABLED and len(messages) >= 2
                 and batchwire.batch_eligible(descriptor))
    results = []
    prepared = None
    for index, message in enumerate(messages):
        if prepared is not None:
            row = prepared.get(index)
            if row is not None:
                results.append(row)
                continue
        data = serialize_message(message)
        results.append(data)
        if vector_ok and prepared is None:
            plan = batchwire.template_wire_plan(descriptor, data)
            if plan is not None and not plan.has_unknown:
                prepared = _prepare_encode_rows(descriptor, plan, data,
                                                message, messages,
                                                index + 1, _varint_payload,
                                                np)
    return results


def _prepare_encode_rows(descriptor, plan, template, anchor, messages,
                         start, varint_payload, np):
    """Patch the template's value bytes for every conforming message.

    Conformance: identical presence set, no unknown fields, identical
    repeated-element counts, and every varint value encoding to the
    template's width (which pins every output byte position).  Returns
    {batch index: wire bytes}.
    """
    from repro.proto import batchwire
    counts = {number: spec.count
              for number, spec in plan.repeated.items()}

    def element_count(message, number):
        repeated = message._values.get(number)
        return len(repeated._items) if repeated is not None else 0

    candidates = [
        i for i in range(start, len(messages))
        if (messages[i]._hasbits == anchor._hasbits
            and not messages[i]._unknown
            and all(element_count(messages[i], number) == count
                    for number, count in counts.items()))
    ]
    if not candidates:
        return {}
    out = np.tile(np.frombuffer(template, dtype=np.uint8),
                  (len(candidates), 1))
    keep = np.ones(len(candidates), dtype=bool)
    for op in plan.singular_ops:
        fd = descriptor.field_by_number(op.number)
        column = [messages[i]._values[op.number] for i in candidates]
        _patch_column(out, keep, op, fd, column, varint_payload, np)
    for number, spec in plan.repeated.items():
        fd = descriptor.field_by_number(number)
        for position, element in enumerate(spec.elements):
            column = [messages[i]._values[number]._items[position]
                      for i in candidates]
            _patch_column(out, keep, element, fd, column, varint_payload,
                          np, width=spec.width, kind=spec.kind)
    return {index: out[j].tobytes()
            for j, index in enumerate(candidates) if keep[j]}


def _patch_column(out, keep, op, fd, column, varint_payload, np,
                  width=None, kind=None):
    """Write one field/element run's values into the output matrix."""
    from repro.proto import batchwire
    if (kind or op.kind) == "fixed":
        fmt = _FIXED[fd.field_type][0]
        packed = b"".join(_struct_pack(fmt, value) for value in column)
        w = width if width is not None else op.width
        out[:, op.start:op.start + w] = np.frombuffer(
            packed, dtype=np.uint8).reshape(len(column), w)
        return
    payload = np.array([varint_payload(fd, value) for value in column],
                       dtype=np.uint64)
    keep &= batchwire.varint_length_vec(payload) == op.length
    batchwire.emit_varint(out, op.start, op.length, payload)
