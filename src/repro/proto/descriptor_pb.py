"""Self-hosting schema reflection: schemas as protobuf messages.

Real protobuf describes schemas *in* protobuf: protoc emits
``FileDescriptorProto`` messages (descriptor.proto), which runtimes use
for reflection, RPC service discovery, and persisting schemas next to
data.  This module implements the subset of descriptor.proto our schema
model covers, **using the real field numbers and enum values** from
upstream descriptor.proto -- so the wire bytes produced here are
structurally compatible with real protoc output for the supported
feature set.

Round trip::

    blob = schema_to_file_descriptor(schema, name="svc.proto").serialize()
    again = schema_from_file_descriptor(
        DESCRIPTOR_SCHEMA["FileDescriptorProto"].parse(blob))
"""

from __future__ import annotations

from repro.proto.descriptor import (
    EnumDescriptor,
    FieldDescriptor,
    MessageDescriptor,
    Schema,
)
from repro.proto.errors import SchemaError
from repro.proto.message import Message
from repro.proto.parser import parse_schema
from repro.proto.types import FieldType, Label

#: The meta-schema: the supported subset of upstream descriptor.proto,
#: with upstream's field numbers and enum values.
DESCRIPTOR_SCHEMA = parse_schema("""
    syntax = "proto2";
    package google.protobuf;

    message FileDescriptorProto {
      optional string name = 1;
      optional string package = 2;
      repeated DescriptorProto message_type = 4;
      repeated EnumDescriptorProto enum_type = 5;
      optional string syntax = 12;
    }

    message DescriptorProto {
      optional string name = 1;
      repeated FieldDescriptorProto field = 2;
      repeated DescriptorProto nested_type = 3;
      repeated EnumDescriptorProto enum_type = 4;
      optional MessageOptions options = 7;
      repeated OneofDescriptorProto oneof_decl = 8;
    }

    message FieldDescriptorProto {
      optional string name = 1;
      optional int32 number = 3;
      optional int32 label = 4;
      optional int32 type = 5;
      optional string type_name = 6;
      optional string default_value = 7;
      optional FieldOptions options = 8;
      optional int32 oneof_index = 9;
    }

    message FieldOptions {
      optional bool packed = 2;
    }

    message MessageOptions {
      optional bool map_entry = 7;
    }

    message OneofDescriptorProto {
      optional string name = 1;
    }

    message EnumDescriptorProto {
      optional string name = 1;
      repeated EnumValueDescriptorProto value = 2;
    }

    message EnumValueDescriptorProto {
      optional string name = 1;
      optional int32 number = 2;
    }
""")

#: Upstream descriptor.proto FieldDescriptorProto.Type values.
_TYPE_NUMBERS: dict[FieldType, int] = {
    FieldType.DOUBLE: 1, FieldType.FLOAT: 2, FieldType.INT64: 3,
    FieldType.UINT64: 4, FieldType.INT32: 5, FieldType.FIXED64: 6,
    FieldType.FIXED32: 7, FieldType.BOOL: 8, FieldType.STRING: 9,
    FieldType.GROUP: 10, FieldType.MESSAGE: 11, FieldType.BYTES: 12,
    FieldType.UINT32: 13, FieldType.ENUM: 14, FieldType.SFIXED32: 15,
    FieldType.SFIXED64: 16, FieldType.SINT32: 17, FieldType.SINT64: 18,
}
_TYPES_BY_NUMBER = {number: ft for ft, number in _TYPE_NUMBERS.items()}

#: Upstream FieldDescriptorProto.Label values.
_LABEL_NUMBERS = {Label.OPTIONAL: 1, Label.REQUIRED: 2, Label.REPEATED: 3}
_LABELS_BY_NUMBER = {number: label
                     for label, number in _LABEL_NUMBERS.items()}


def _default_text(fd: FieldDescriptor) -> str | None:
    if fd.default is None:
        return None
    if fd.field_type is FieldType.ENUM:
        assert fd.enum_type is not None
        for name, number in fd.enum_type.values.items():
            if number == fd.default:
                return name
        return str(fd.default)
    if isinstance(fd.default, bool):
        return "true" if fd.default else "false"
    if isinstance(fd.default, bytes):
        return fd.default.decode("latin-1")
    return str(fd.default)


def _encode_field(fd: FieldDescriptor, oneof_names: list[str]) -> Message:
    proto = DESCRIPTOR_SCHEMA["FieldDescriptorProto"].new_message()
    proto["name"] = fd.name
    proto["number"] = fd.number
    proto["label"] = _LABEL_NUMBERS[fd.label]
    proto["type"] = _TYPE_NUMBERS[fd.field_type]
    if fd.field_type is FieldType.MESSAGE:
        assert fd.type_name is not None
        proto["type_name"] = "." + fd.type_name
    elif fd.field_type is FieldType.ENUM:
        assert fd.enum_type is not None
        proto["type_name"] = "." + fd.enum_type.name
    default = _default_text(fd)
    if default is not None:
        proto["default_value"] = default
    if fd.packed:
        proto.mutable("options")["packed"] = True
    if fd.oneof_group is not None:
        proto["oneof_index"] = oneof_names.index(fd.oneof_group)
    return proto


def _encode_enum(enum: EnumDescriptor) -> Message:
    proto = DESCRIPTOR_SCHEMA["EnumDescriptorProto"].new_message()
    proto["name"] = enum.name.rsplit(".", 1)[-1]
    for name, number in enum.values.items():
        value = proto["value"].add()
        value["name"] = name
        value["number"] = number
    return proto


def _encode_message(descriptor: MessageDescriptor,
                    children: dict[str, list[MessageDescriptor]],
                    nested_enums: dict[str, list[EnumDescriptor]]) -> Message:
    proto = DESCRIPTOR_SCHEMA["DescriptorProto"].new_message()
    proto["name"] = descriptor.name.rsplit(".", 1)[-1]
    oneof_names = list(descriptor.oneof_groups)
    for group in oneof_names:
        decl = proto["oneof_decl"].add()
        decl["name"] = group
    for fd in descriptor.fields:
        proto["field"].append(_encode_field(fd, oneof_names))
    for child in children.get(descriptor.name, ()):
        proto["nested_type"].append(
            _encode_message(child, children, nested_enums))
    for enum in nested_enums.get(descriptor.name, ()):
        proto["enum_type"].append(_encode_enum(enum))
    if descriptor.is_map_entry:
        proto.mutable("options")["map_entry"] = True
    return proto


def schema_to_file_descriptor(schema: Schema,
                              name: str = "schema.proto") -> Message:
    """Encode ``schema`` as a FileDescriptorProto message."""
    children: dict[str, list[MessageDescriptor]] = {}
    top_level: list[MessageDescriptor] = []
    for descriptor in schema.messages():
        if "." in descriptor.name:
            parent = descriptor.name.rsplit(".", 1)[0]
            children.setdefault(parent, []).append(descriptor)
        else:
            top_level.append(descriptor)
    nested_enums: dict[str, list[EnumDescriptor]] = {}
    top_enums: list[EnumDescriptor] = []
    for enum in schema.enums():
        if "." in enum.name:
            parent = enum.name.rsplit(".", 1)[0]
            nested_enums.setdefault(parent, []).append(enum)
        else:
            top_enums.append(enum)
    proto = DESCRIPTOR_SCHEMA["FileDescriptorProto"].new_message()
    proto["name"] = name
    if schema.package:
        proto["package"] = schema.package
    proto["syntax"] = schema.syntax
    for descriptor in top_level:
        proto["message_type"].append(
            _encode_message(descriptor, children, nested_enums))
    for enum in top_enums:
        proto["enum_type"].append(_encode_enum(enum))
    return proto


# -- decoding -----------------------------------------------------------------


def _parse_default(text: str, field_type: FieldType,
                   enum: EnumDescriptor | None):
    if field_type is FieldType.STRING:
        return text
    if field_type is FieldType.BYTES:
        return text.encode("latin-1")
    if field_type is FieldType.BOOL:
        return text == "true"
    if field_type in (FieldType.FLOAT, FieldType.DOUBLE):
        return float(text)
    if field_type is FieldType.ENUM:
        assert enum is not None
        return enum.values.get(text, int(text) if text.lstrip("-").isdigit()
                               else 0)
    return int(text)


def _decode_message(proto: Message, prefix: str, schema: Schema,
                    enums: dict[str, EnumDescriptor],
                    map_entries: set[str]) -> None:
    qname = prefix + proto["name"]
    oneof_names = [decl["name"] for decl in proto["oneof_decl"]]
    fields: list[FieldDescriptor] = []
    for field_proto in proto["field"]:
        type_number = field_proto["type"]
        if type_number not in _TYPES_BY_NUMBER:
            raise SchemaError(f"unknown field type number {type_number}")
        field_type = _TYPES_BY_NUMBER[type_number]
        label = _LABELS_BY_NUMBER.get(field_proto["label"])
        if label is None:
            raise SchemaError(
                f"unknown label number {field_proto['label']}")
        type_name = None
        enum = None
        if field_type is FieldType.MESSAGE:
            type_name = field_proto["type_name"].lstrip(".")
        elif field_type is FieldType.ENUM:
            enum_name = field_proto["type_name"].lstrip(".")
            enum = enums.get(enum_name)
            if enum is None:
                raise SchemaError(f"unknown enum type {enum_name}")
        default = None
        if field_proto.has("default_value"):
            default = _parse_default(field_proto["default_value"],
                                     field_type, enum)
        oneof = None
        if field_proto.has("oneof_index"):
            oneof = oneof_names[field_proto["oneof_index"]]
        fields.append(FieldDescriptor(
            name=field_proto["name"], number=field_proto["number"],
            field_type=field_type, label=label, type_name=type_name,
            enum_type=enum,
            packed=(field_proto.has("options")
                    and field_proto["options"]["packed"]),
            default=default, oneof_group=oneof))
    is_map_entry = (proto.has("options")
                    and proto["options"]["map_entry"])
    schema.add_message(MessageDescriptor(qname, fields, full_name=qname,
                                         is_map_entry=is_map_entry))
    for nested in proto["nested_type"]:
        _decode_message(nested, qname + ".", schema, enums, map_entries)


def schema_from_file_descriptor(proto: Message) -> Schema:
    """Decode a FileDescriptorProto message back into a Schema."""
    if proto.descriptor is not DESCRIPTOR_SCHEMA["FileDescriptorProto"]:
        raise TypeError("expected a FileDescriptorProto message")
    schema = Schema(package=proto["package"])
    if proto.has("syntax"):
        schema.syntax = proto["syntax"]
    enums: dict[str, EnumDescriptor] = {}
    for enum_proto in proto["enum_type"]:
        enums[enum_proto["name"]] = EnumDescriptor(
            name=enum_proto["name"],
            values={value["name"]: value["number"]
                    for value in enum_proto["value"]})

    def collect_nested(message_proto: Message, prefix: str) -> None:
        for enum_proto in message_proto["enum_type"]:
            name = prefix + message_proto["name"] + "." + enum_proto["name"]
            enums[name] = EnumDescriptor(
                name=name,
                values={value["name"]: value["number"]
                        for value in enum_proto["value"]})
        for nested in message_proto["nested_type"]:
            collect_nested(nested, prefix + message_proto["name"] + ".")

    for message_proto in proto["message_type"]:
        collect_nested(message_proto, "")
    for enum in enums.values():
        schema.add_enum(enum)
    for message_proto in proto["message_type"]:
        _decode_message(message_proto, "", schema, enums, set())
    schema.resolve()
    return schema
