"""Serialization/deserialization event traces.

The software encoder and decoder optionally record a trace of the primitive
operations they perform (varint encodes, memcpys, allocations, per-field
dispatch, ...).  The CPU cost models in :mod:`repro.cpu` replay these traces
and charge cycles per event, which is how we model the BOOM and Xeon
baselines mechanistically rather than with opaque lookup tables.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Op(enum.Enum):
    """Primitive software ser/deser operations that cost CPU cycles."""

    TAG_ENCODE = "tag_encode"          # arg: encoded tag bytes
    TAG_DECODE = "tag_decode"          # arg: encoded tag bytes
    VARINT_ENCODE = "varint_encode"    # arg: encoded varint bytes
    VARINT_DECODE = "varint_decode"    # arg: encoded varint bytes
    ZIGZAG = "zigzag"                  # arg: 1
    FIXED_WRITE = "fixed_write"        # arg: width in bytes
    FIXED_READ = "fixed_read"          # arg: width in bytes
    MEMCPY = "memcpy"                  # arg: bytes copied
    ALLOC = "alloc"                    # arg: bytes allocated
    FIELD_CHECK = "field_check"        # arg: defined fields scanned (ser)
    FIELD_DISPATCH = "field_dispatch"  # arg: 1, per decoded field (deser)
    BYTESIZE_FIELD = "bytesize_field"  # arg: 1, per field in ByteSize pass
    MSG_ENTER = "msg_enter"            # arg: 1 (sub-message setup)
    MSG_EXIT = "msg_exit"              # arg: 1
    OBJ_CONSTRUCT = "obj_construct"    # arg: object size in bytes (deser)


@dataclass
class Trace:
    """An append-only list of (op, arg) events with simple aggregation."""

    events: list[tuple[Op, int]] = field(default_factory=list)

    def emit(self, op: Op, arg: int = 1) -> None:
        self.events.append((op, arg))

    def count(self, op: Op) -> int:
        """Number of events of type ``op``."""
        return sum(1 for event_op, _ in self.events if event_op is op)

    def total(self, op: Op) -> int:
        """Sum of args over events of type ``op``."""
        return sum(arg for event_op, arg in self.events if event_op is op)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)
