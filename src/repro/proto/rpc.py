"""A minimal RPC runtime over service definitions.

Protobuf is a data *and service* description system (Section 2); this
module provides the service half for our simulated world: a
:class:`ServiceHandler` dispatches wire-format requests to registered
Python callables, and a :class:`Stub` gives callers typed methods.  Both
ends can serialize through the accelerator (``use_accelerator=True``),
putting the RPC-side share of the serialization tax (Section 3.4) on
the offload path.

The transport is any callable ``(full_method_name, request_bytes) ->
response_bytes`` -- in-process by default, but the seam where a real
network would go.
"""

from __future__ import annotations

from typing import Callable

from repro.proto.descriptor import ServiceDescriptor
from repro.proto.errors import ProtoError
from repro.proto.message import Message

Transport = Callable[[str, bytes], bytes]


class RpcError(ProtoError):
    """A call failed: unknown method, handler error, or bad payload.

    Aligned with the structured :class:`~repro.proto.errors.ProtoError`
    taxonomy so serving-layer rejections are machine-inspectable:

    Attributes:
        method: the full or bare method name the failure belongs to,
            when known (``"/Echo/Repeat"`` or ``"Repeat"``).
        site: the stage that rejected the call (a hardware fault site
            like ``"deserializer"``, or a serving stage like
            ``"serve.queue"``).
        offset: byte offset in the wire payload for decode failures,
            carried over losslessly from the wrapped
            :class:`~repro.proto.errors.WireFormatError`/
            :class:`~repro.proto.errors.AccelFault`.
    """

    def __init__(self, message: str, *, method: str | None = None,
                 site: str | None = None, offset: int | None = None):
        super().__init__(message)
        self.method = method
        self.site = site
        self.offset = offset

    @classmethod
    def wrap(cls, error: BaseException, *,
             method: str | None = None) -> "RpcError":
        """Wrap a decode/accelerator error losslessly: keeps its message
        and any site/offset attributes, adds the failing method."""
        return cls(str(error), method=method,
                   site=getattr(error, "site", None),
                   offset=getattr(error, "offset", None))


class ServiceHandler:
    """Server side: routes decoded requests to application callables."""

    def __init__(self, service: ServiceDescriptor, accelerator=None):
        self.service = service
        self._accelerator = accelerator
        self._handlers: dict[str, Callable[[Message], Message]] = {}
        self.calls_served = 0

    def register(self, method_name: str,
                 handler: Callable[[Message], Message]) -> None:
        """Attach the application function implementing one method."""
        self.service.method(method_name)  # validates existence
        self._handlers[method_name] = handler

    def _decode(self, descriptor, data: bytes) -> Message:
        if self._accelerator is not None:
            result = self._accelerator.deserialize(descriptor, data)
            return self._accelerator.read_message(descriptor,
                                                  result.dest_addr)
        return descriptor.parse(data)

    def _encode(self, message: Message) -> bytes:
        if self._accelerator is not None:
            addr = self._accelerator.load_object(message)
            return self._accelerator.serialize(message.descriptor,
                                               addr).data
        return message.serialize()

    def __call__(self, full_method: str, request_bytes: bytes) -> bytes:
        """The transport-facing entry point."""
        prefix = f"/{self.service.name}/"
        if not full_method.startswith(prefix):
            raise RpcError(f"no such service route {full_method!r}",
                           method=full_method, site="rpc.route")
        method_name = full_method[len(prefix):]
        handler = self._handlers.get(method_name)
        if handler is None:
            raise RpcError(f"method {method_name!r} is not implemented",
                           method=full_method, site="rpc.route")
        method = self.service.method(method_name)
        assert method.input_descriptor is not None
        assert method.output_descriptor is not None
        try:
            request = self._decode(method.input_descriptor, request_bytes)
        except ProtoError as error:
            # Bad payload: reject with the decode stage's site and the
            # byte offset preserved (PR 2 structured-error taxonomy).
            raise RpcError.wrap(error, method=full_method) from error
        response = handler(request)
        if (not isinstance(response, Message)
                or response.descriptor is not method.output_descriptor):
            raise RpcError(
                f"{method_name}: handler must return "
                f"{method.output_type}", method=full_method,
                site="rpc.handler")
        self.calls_served += 1
        return self._encode(response)


class Stub:
    """Client side: ``stub.call('Method', request) -> response``."""

    def __init__(self, service: ServiceDescriptor, transport: Transport,
                 accelerator=None):
        self.service = service
        self._transport = transport
        self._accelerator = accelerator
        self.calls_made = 0

    def call(self, method_name: str, request: Message) -> Message:
        method = self.service.method(method_name)
        assert method.input_descriptor is not None
        assert method.output_descriptor is not None
        if request.descriptor is not method.input_descriptor:
            raise RpcError(
                f"{method_name} expects {method.input_type}, got "
                f"{request.descriptor.name}", method=method_name,
                site="rpc.stub")
        if self._accelerator is not None:
            addr = self._accelerator.load_object(request)
            payload = self._accelerator.serialize(request.descriptor,
                                                  addr).data
        else:
            payload = request.serialize()
        response_bytes = self._transport(
            self.service.full_method_name(method_name), payload)
        self.calls_made += 1
        try:
            if self._accelerator is not None:
                result = self._accelerator.deserialize(
                    method.output_descriptor, response_bytes)
                return self._accelerator.read_message(
                    method.output_descriptor, result.dest_addr)
            return method.output_descriptor.parse(response_bytes)
        except RpcError:
            raise
        except ProtoError as error:
            raise RpcError.wrap(error, method=method_name) from error
