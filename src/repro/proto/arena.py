"""Software arena allocation (Section 2.3 of the paper).

Upstream protobuf's arena pre-allocates a large chunk of memory so message
construction/destruction reduces to pointer bumps and a single bulk free.
Our Python model tracks the same *accounting*: how many bytes each message
would have consumed, how many chunk refills occurred, and amortised
construction cost -- the quantities the CPU cost models and the paper's
destructor discussion (Section 7) care about.

This is the *software* arena; the accelerator's own arenas live in
:mod:`repro.memory.arena`.
"""

from __future__ import annotations

#: Default arena chunk size, matching upstream protobuf's StartBlockSize
#: growth target (upstream starts at 256 B and doubles; we model the steady
#: state a serving workload reaches).
DEFAULT_CHUNK_BYTES = 8192

_ALIGNMENT = 8


class Arena:
    """A bump-pointer allocation region for message objects.

    Usage mirrors the C++ API::

        arena = Arena()
        msg = schema['Envelope'].new_message(arena=arena)
        ...
        arena.reset()   # frees every owned message at once
    """

    def __init__(self, chunk_bytes: int = DEFAULT_CHUNK_BYTES):
        if chunk_bytes <= 0:
            raise ValueError("chunk_bytes must be positive")
        self.chunk_bytes = chunk_bytes
        self._owned: list = []
        self._offset = 0
        self._chunks = 1
        self._total_allocated = 0

    def register(self, message) -> None:
        """Record ``message`` as arena-owned (called by Message.__init__)."""
        self._owned.append(message)

    def allocate(self, size: int) -> int:
        """Bump-allocate ``size`` bytes; returns the arena-relative offset.

        Models the pointer-increment fast path; crossing a chunk boundary
        counts a refill (the slow path that hits the system allocator).
        """
        if size < 0:
            raise ValueError("allocation size must be non-negative")
        size = _align(size)
        if self._offset + size > self._chunks * self.chunk_bytes:
            self._chunks += 1 + size // self.chunk_bytes
        offset = self._offset
        self._offset += size
        self._total_allocated += size
        return offset

    @property
    def bytes_allocated(self) -> int:
        return self._total_allocated

    @property
    def chunk_refills(self) -> int:
        """Number of slow-path chunk acquisitions beyond the first."""
        return self._chunks - 1

    @property
    def owned_messages(self) -> int:
        return len(self._owned)

    def reset(self) -> None:
        """Free everything at once (the arena's destructor amortisation)."""
        for message in self._owned:
            message.clear()
        self._owned.clear()
        self._offset = 0
        self._chunks = 1
        self._total_allocated = 0


def _align(size: int, alignment: int = _ALIGNMENT) -> int:
    return (size + alignment - 1) & ~(alignment - 1)
