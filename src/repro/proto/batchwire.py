"""Shared machinery for batch-vectorized wire processing.

The batch execution tier (``repro.accel.batchgen`` on the accelerator,
:func:`repro.proto.specialized.parse_batch` / ``encode_batch`` on the
CPU twin) exploits one observation: messages of the same schema in one
batch usually share their *wire structure* -- the same fields present in
the same order with the same encoded varint lengths.  When they do, tag
dispatch, bounds checks and byte classification only need to run once,
against a *template* message; every other message is validated against
the template with a single vectorized mask compare and its values are
decoded with numpy column operations over a stacked byte matrix.

This module holds the schema/wire layer of that scheme, with no
dependence on the accelerator model:

* :func:`batch_eligible` -- the batch-shape classifier's schema half:
  flat numeric-scalar messages (optional/repeated, packed or not,
  oneofs allowed; no strings/bytes/sub-messages/maps/groups).
* :func:`template_wire_plan` -- one structural walk of a template
  buffer producing (a) a per-byte *conformance class* mask, (b) the
  value-extraction program (field ops and repeated-element positions),
  and (c) the region open/append event stream the accelerator needs to
  replay arena allocation exactly.
* numpy helpers for stacked-matrix varint decode (a parallel-prefix
  gather over the 7-bit groups), zig-zag transforms, varint length
  classification and varint emission.

Conformance classes: a byte is STRUCT (must equal the template byte --
keys, packed-length varints and whole unknown-field regions),
VAR_PAYLOAD (a known varint's value byte: only the continuation bit
0x80 must match, which pins the encoded length and therefore the whole
parse structure), or FREE (fixed-width payload bytes: unconstrained).
A message passes when ``((row ^ template) & mask) == 0`` everywhere --
one vectorized compare per batch.

numpy is optional.  When it is absent every entry point degrades: the
classifier reports ineligible and callers fall back to the scalar
per-message kernels.
"""

from __future__ import annotations

from dataclasses import dataclass, field

try:  # pragma: no cover - exercised indirectly by both import outcomes
    import numpy as np
except ImportError:  # pragma: no cover
    np = None

from repro.proto.descriptor import MessageDescriptor
from repro.proto.errors import DecodeError
from repro.proto.types import CPP_SCALAR_BYTES, FieldType
from repro.proto.varint import decode_varint

#: Byte conformance classes (mask values; see module docstring).
STRUCT = 0xFF
VAR_PAYLOAD = 0x80
FREE = 0x00

#: Fixed-width scalar types, by wire width.
FIXED64_TYPES = frozenset({FieldType.DOUBLE, FieldType.FIXED64,
                           FieldType.SFIXED64})
FIXED32_TYPES = frozenset({FieldType.FLOAT, FieldType.FIXED32,
                           FieldType.SFIXED32})
ZIGZAG_TYPES = frozenset({FieldType.SINT32, FieldType.SINT64})

#: Scalar types the batch tier vectorizes.  Strings, bytes,
#: sub-messages and maps are the "irregular" shapes the classifier
#: routes to the scalar kernels.
ELIGIBLE_TYPES = frozenset(CPP_SCALAR_BYTES)


def numpy_available() -> bool:
    """True when the vectorized tier can run at all."""
    return np is not None


def batch_eligible(descriptor: MessageDescriptor) -> bool:
    """Schema half of the batch-shape classifier.

    Eligible messages are flat numeric records: every field a scalar
    from :data:`ELIGIBLE_TYPES`, optional or repeated (packed or
    unpacked).  Anything carrying variable host-side allocation
    (strings/bytes), nesting (sub-messages, maps) or group encodings is
    irregular and stays on the scalar tiers.  Oneof members are also
    excluded: a wire that sets two members of one group makes the FSM
    clear the earlier slot mid-parse, which a patch-the-template replay
    cannot reproduce from field values alone.
    """
    for fd in descriptor.fields:
        if (fd.is_map or fd.oneof_group is not None
                or fd.field_type not in ELIGIBLE_TYPES):
            return False
    return True


@dataclass(frozen=True)
class SingularOp:
    """One singular-field value occurrence in the template wire."""

    number: int
    kind: str              # "varint" | "zigzag" | "bool" | "fixed"
    start: int             # wire offset of the value bytes
    length: int            # encoded length (== width for fixed)
    width: int             # C++ slot width in bytes


@dataclass(frozen=True)
class ElementOp:
    """One repeated-element value occurrence in the template wire."""

    start: int
    length: int


@dataclass
class RepeatedField:
    """Per-repeated-field aggregation over the whole template walk."""

    number: int
    kind: str              # "varint" | "zigzag" | "bool" | "fixed"
    width: int
    elements: list[ElementOp] = field(default_factory=list)

    @property
    def count(self) -> int:
        return len(self.elements)


@dataclass
class TemplateWirePlan:
    """Everything the vectorized tiers derive from one template walk."""

    length: int
    #: Per-byte conformance classes (len == length).
    mask: bytes
    #: Singular value occurrences, in wire order (duplicates kept --
    #: applying them in order reproduces last-wins semantics).
    singular_ops: list[SingularOp]
    #: Repeated fields in first-occurrence order.
    repeated: dict[int, RepeatedField]
    #: Region event stream, in wire order: ("open", number) the first
    #: time a repeated field's region is created, ("append", number)
    #: per element.  Replaying these reproduces the accelerator's
    #: arena-allocation schedule (open -> header + initial buffer,
    #: append -> doubling grow when count hits capacity).
    events: list[tuple[str, int]]
    #: Every key occurrence's field number, in wire order (the ADT
    #: entry lookup sequence on the accelerator).
    key_numbers: list[int]
    #: True when the template carries unknown fields (skipped by the
    #: accelerator; the CPU twin falls back to preserve them).
    has_unknown: bool
    #: True when a packed occurrence held zero elements (presence
    #: semantics the CPU twin's field assignment cannot reproduce).
    has_empty_packed: bool


def _field_kind(ft: FieldType) -> str:
    if ft in FIXED64_TYPES or ft in FIXED32_TYPES:
        return "fixed"
    if ft in ZIGZAG_TYPES:
        return "zigzag"
    if ft is FieldType.BOOL:
        return "bool"
    return "varint"


def template_wire_plan(descriptor: MessageDescriptor,
                       template: bytes) -> TemplateWirePlan | None:
    """Walk ``template`` once against ``descriptor``.

    Returns None whenever the template is not a clean, fully-regular
    buffer for this schema -- a wire-type mismatch, truncation, a
    deprecated group tag, a misaligned packed payload, an ineligible
    schema.  Callers then run the whole batch through the scalar tiers,
    which reproduce the exact error (or exact success) per message.
    """
    if not batch_eligible(descriptor):
        return None
    fields = {fd.number: fd for fd in descriptor.fields}
    size = len(template)
    mask = bytearray(size)                  # FREE by default
    singular_ops: list[SingularOp] = []
    repeated: dict[int, RepeatedField] = {}
    events: list[tuple[str, int]] = []
    key_numbers: list[int] = []
    has_unknown = False
    has_empty_packed = False
    open_number: int | None = None
    pos = 0

    def struct_span(a: int, b: int) -> None:
        mask[a:b] = b"\xff" * (b - a)

    def read_varint(at: int, limit: int) -> tuple[int, int] | None:
        """Decode one varint ending at or before ``limit``."""
        try:
            value, length = decode_varint(template[at:at + 10])
        except DecodeError:
            return None
        if at + length > limit:
            return None
        return value, length

    while pos < size:
        decoded = read_varint(pos, size)
        if decoded is None:
            return None
        key, key_len = decoded
        struct_span(pos, pos + key_len)
        pos += key_len
        number = key >> 3
        wire_type = key & 7
        if number < 1 or wire_type in (3, 4, 6, 7):
            return None
        key_numbers.append(number)
        fd = fields.get(number)
        if fd is None:
            # Unknown field: the whole region (value included) is
            # STRUCT, so conforming messages skip identically.
            has_unknown = True
            start = pos
            if wire_type == 0:
                decoded = read_varint(pos, size)
                if decoded is None:
                    return None
                pos += decoded[1]
            elif wire_type == 1:
                pos += 8
            elif wire_type == 5:
                pos += 4
            else:  # LENGTH_DELIMITED
                decoded = read_varint(pos, size)
                if decoded is None:
                    return None
                pos += decoded[1] + decoded[0]
            if pos > size:
                return None
            struct_span(start, pos)
            continue
        ft = fd.field_type
        width = CPP_SCALAR_BYTES[ft]
        kind = _field_kind(ft)
        fixed = kind == "fixed"
        element_wt = (1 if width == 8 else 5) if fixed else 0
        if fd.is_repeated:
            if open_number is not None and open_number != number:
                open_number = None
            if open_number is None:
                if number not in repeated:
                    repeated[number] = RepeatedField(number=number,
                                                    kind=kind, width=width)
                    events.append(("open", number))
                open_number = number
            rep = repeated[number]
            if wire_type == 2:
                # Packed run (the parser accepts it for any numeric
                # repeated field, declared packed or not).
                decoded = read_varint(pos, size)
                if decoded is None:
                    return None
                payload_len, len_len = decoded
                struct_span(pos, pos + len_len)
                pos += len_len
                end = pos + payload_len
                if end > size:
                    return None
                if payload_len == 0:
                    has_empty_packed = True
                while pos < end:
                    if fixed:
                        if pos + width > end:
                            return None
                        rep.elements.append(ElementOp(pos, width))
                        events.append(("append", number))
                        pos += width
                    else:
                        decoded = read_varint(pos, end)
                        if decoded is None:
                            return None
                        mask[pos:pos + decoded[1]] = \
                            bytes([VAR_PAYLOAD]) * decoded[1]
                        rep.elements.append(ElementOp(pos, decoded[1]))
                        events.append(("append", number))
                        pos += decoded[1]
            elif wire_type == element_wt:
                if fixed:
                    if pos + width > size:
                        return None
                    rep.elements.append(ElementOp(pos, width))
                    pos += width
                else:
                    decoded = read_varint(pos, size)
                    if decoded is None:
                        return None
                    mask[pos:pos + decoded[1]] = \
                        bytes([VAR_PAYLOAD]) * decoded[1]
                    rep.elements.append(ElementOp(pos, decoded[1]))
                    pos += decoded[1]
                events.append(("append", number))
            else:
                return None   # wire-type mismatch: a scalar-tier error
            continue
        # Singular field: closes any open repeated region.
        open_number = None
        if fixed:
            if wire_type != element_wt or pos + width > size:
                return None
            singular_ops.append(SingularOp(number, kind, pos, width, width))
            pos += width
        else:
            if wire_type != 0:
                return None
            decoded = read_varint(pos, size)
            if decoded is None:
                return None
            mask[pos:pos + decoded[1]] = bytes([VAR_PAYLOAD]) * decoded[1]
            singular_ops.append(
                SingularOp(number, kind, pos, decoded[1], width))
            pos += decoded[1]
    return TemplateWirePlan(length=size, mask=bytes(mask),
                            singular_ops=singular_ops, repeated=repeated,
                            events=events, key_numbers=key_numbers,
                            has_unknown=has_unknown,
                            has_empty_packed=has_empty_packed)


# ---------------------------------------------------------------------------
# numpy column kernels (all no-ops/unused when numpy is absent)
# ---------------------------------------------------------------------------

def stack_rows(buffers: list[bytes]):
    """Stack equal-length byte strings into an (N, L) uint8 matrix."""
    n = len(buffers)
    if n == 0:
        return np.zeros((0, 0), dtype=np.uint8)
    length = len(buffers[0])
    return np.frombuffer(b"".join(buffers),
                         dtype=np.uint8).reshape(n, length)


def conforming_rows(matrix, template_row, mask_row):
    """Boolean vector: which rows structurally match the template."""
    if matrix.shape[1] == 0:
        return np.ones(matrix.shape[0], dtype=bool)
    mismatch = np.bitwise_and(np.bitwise_xor(matrix, template_row),
                              mask_row)
    return ~mismatch.any(axis=1)


def gather_varint(matrix, start: int, length: int):
    """Parallel-prefix decode of one varint column run.

    Every row is known (by conformance) to hold a ``length``-byte
    varint at ``start``; the 7-bit groups of all rows gather in
    ``length`` vector steps.  Ten-byte varints wrap modulo 2**64
    exactly like :func:`repro.proto.varint.decode_varint`'s truncation.
    """
    if length == 1:
        return matrix[:, start].astype(np.uint64)
    value = np.zeros(matrix.shape[0], dtype=np.uint64)
    for j in range(length):
        value |= ((matrix[:, start + j].astype(np.uint64)
                   & np.uint64(0x7F)) << np.uint64(7 * j))
    return value


def zigzag_decode_vec(payload):
    """Vectorized zig-zag decode, truncating to 64 bits like the
    scalar path (uint64 wraparound is the & _U64_MASK of varint.py)."""
    one = np.uint64(1)
    return (payload >> one) ^ (np.uint64(0) - (payload & one))


def decoded_slot_bytes(value, kind: str, width: int):
    """C++ slot bytes (N, width) for decoded varint payload ``value``."""
    if kind == "zigzag":
        value = zigzag_decode_vec(value)
    elif kind == "bool":
        value = (value != 0).astype(np.uint64)
    if width == 8:
        return value.reshape(-1, 1).view(np.uint8)
    if width == 4:
        return (value & np.uint64(0xFFFFFFFF)).astype(
            np.uint32).reshape(-1, 1).view(np.uint8)
    return (value & np.uint64(0xFF)).astype(np.uint8).reshape(-1, 1)


def varint_length_vec(payload):
    """Encoded varint length (1..10) of each uint64 payload."""
    lengths = np.ones(payload.shape[0], dtype=np.uint8)
    for k in range(1, 10):
        lengths += (payload >= np.uint64(1 << (7 * k))).astype(np.uint8)
    return lengths


def emit_varint(out, start: int, length: int, payload) -> None:
    """Write each row's payload as a ``length``-byte varint at
    ``start`` of the (N, L) output matrix (lengths pre-validated)."""
    for j in range(length):
        byte = ((payload >> np.uint64(7 * j))
                & np.uint64(0x7F)).astype(np.uint8)
        if j < length - 1:
            byte |= np.uint8(0x80)
        out[:, start + j] = byte


#: C++ types the serializer reads back as signed two's complement
#: (mirror of repro.accel.serializer._SIGNED_CPP_TYPES).
SIGNED_CPP_TYPES = frozenset({
    FieldType.INT32, FieldType.INT64, FieldType.SINT32, FieldType.SINT64,
    FieldType.SFIXED32, FieldType.SFIXED64, FieldType.ENUM,
})


def zigzag_encode_vec(raw):
    """Vectorized 64-bit zig-zag encode of sign-extended uint64 raws."""
    return (raw << np.uint64(1)) ^ (np.uint64(0) - (raw >> np.uint64(63)))


def slot_payload_vec(slots, ft: FieldType):
    """Varint payloads (uint64) from raw C++ slot bytes (N, width).

    Mirrors SerializerUnit._scalar_wire_bytes for varint-family types:
    sign-extend the signed C++ types to 64 bits (two's complement,
    masked to uint64 like ``encode_signed``), zig-zag encode sint, and
    collapse bool to 0/1.  ``slots`` must be C-contiguous.
    """
    width = CPP_SCALAR_BYTES[ft]
    signed = ft in SIGNED_CPP_TYPES
    if width == 8:
        raw = slots.copy().view(np.uint64).reshape(-1)
    elif width == 4:
        raw32 = slots.copy().view(np.uint32).reshape(-1)
        if signed:
            raw = raw32.view(np.int32).astype(np.int64).view(np.uint64)
        else:
            raw = raw32.astype(np.uint64)
    else:  # bool
        raw = slots.reshape(-1).astype(np.uint64)
    if ft in ZIGZAG_TYPES:
        return zigzag_encode_vec(raw)
    if ft is FieldType.BOOL:
        return (raw != 0).astype(np.uint64)
    return raw
