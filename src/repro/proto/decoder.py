"""The software protobuf deserializer.

Models the C++ parser the paper profiles: a sequential scan over the wire
bytes (deserialization is inherently serial -- Section 2.2), decoding one
key at a time, dispatching on wire type, allocating strings/sub-messages/
repeated elements as they are encountered, and skipping unknown fields.

Pass a :class:`~repro.proto.trace.Trace` to record the primitive-operation
event stream consumed by the CPU cost models.
"""

from __future__ import annotations

import struct
from typing import Optional

from repro.proto.descriptor import FieldDescriptor, MessageDescriptor
from repro.proto.errors import DecodeError
from repro.proto.message import Message
from repro.proto.trace import Op, Trace
from repro.proto.types import (
    FieldType,
    WireType,
    ZIGZAG_TYPES,
)
from repro.proto.varint import decode_signed, decode_varint, decode_zigzag
from repro.proto.wire import decode_tag, skip_field

_STRUCT_FORMATS = {
    FieldType.DOUBLE: ("<d", 8),
    FieldType.FLOAT: ("<f", 4),
    FieldType.FIXED32: ("<I", 4),
    FieldType.FIXED64: ("<Q", 8),
    FieldType.SFIXED32: ("<i", 4),
    FieldType.SFIXED64: ("<q", 8),
}

#: Nominal heap cost of constructing an empty C++ message object; used only
#: for trace accounting (OBJ_CONSTRUCT events), not functional behaviour.
_NOMINAL_MESSAGE_OBJECT_BYTES = 48


def _decode_varint_value(fd: FieldDescriptor, payload: int):
    """Convert an unsigned varint payload into the field's Python value."""
    ft = fd.field_type
    if ft is FieldType.BOOL:
        return payload != 0
    if ft in ZIGZAG_TYPES:
        value = decode_zigzag(payload)
        if ft is FieldType.SINT32:
            return decode_signed(value & 0xFFFFFFFF, bits=32)
        return value
    if ft in (FieldType.INT32, FieldType.ENUM):
        # C++ semantics: the 64-bit payload is truncated to 32 bits (a
        # negative int32 arrives sign-extended to 10 wire bytes and its
        # low half reconstructs the value exactly).
        return decode_signed(payload & 0xFFFFFFFF, bits=32)
    if ft is FieldType.INT64:
        return decode_signed(payload, bits=64)
    if ft is FieldType.UINT32:
        return payload & 0xFFFFFFFF
    return payload  # UINT64


def _decode_scalar(fd: FieldDescriptor, data: bytes, offset: int,
                   wire_type: WireType, trace: Optional[Trace],
                   arena, keep_unknown: bool = False) -> tuple[object, int]:
    """Decode one element's value; returns (value, new_offset)."""
    ft = fd.field_type
    if ft in _STRUCT_FORMATS:
        fmt, width = _STRUCT_FORMATS[ft]
        expected = (WireType.FIXED32 if width == 4 else WireType.FIXED64)
        if wire_type is not expected:
            raise DecodeError(
                f"field {fd.name}: wire type {wire_type.name} does not "
                f"match {ft.value}")
        if offset + width > len(data):
            raise DecodeError(f"field {fd.name}: truncated fixed value")
        value = struct.unpack_from(fmt, data, offset)[0]
        if trace is not None:
            trace.emit(Op.FIXED_READ, width)
        return value, offset + width
    if ft in (FieldType.STRING, FieldType.BYTES):
        if wire_type is not WireType.LENGTH_DELIMITED:
            raise DecodeError(f"field {fd.name}: expected length-delimited")
        length, consumed = decode_varint(data, offset)
        start = offset + consumed
        end = start + length
        if end > len(data):
            raise DecodeError(f"field {fd.name}: truncated string/bytes")
        raw = data[start:end]
        if trace is not None:
            trace.emit(Op.VARINT_DECODE, consumed)
            trace.emit(Op.ALLOC, max(length, 16))
            trace.emit(Op.MEMCPY, length)
        if ft is FieldType.STRING:
            try:
                return str(raw, "utf-8"), end
            except UnicodeDecodeError:
                if fd.validate_utf8:
                    # proto3 parsers must reject invalid UTF-8.
                    raise DecodeError(
                        f"field {fd.name}: invalid UTF-8 in proto3 "
                        "string") from None
                # proto2 tolerates non-UTF-8 string payloads on parse.
                return str(raw, "latin-1"), end
        return bytes(raw), end
    if ft is FieldType.MESSAGE:
        if wire_type is not WireType.LENGTH_DELIMITED:
            raise DecodeError(f"field {fd.name}: expected length-delimited")
        length, consumed = decode_varint(data, offset)
        start = offset + consumed
        end = start + length
        if end > len(data):
            raise DecodeError(f"field {fd.name}: truncated sub-message")
        assert fd.message_type is not None
        if trace is not None:
            trace.emit(Op.VARINT_DECODE, consumed)
            trace.emit(Op.ALLOC, _NOMINAL_MESSAGE_OBJECT_BYTES)
            trace.emit(Op.OBJ_CONSTRUCT, _NOMINAL_MESSAGE_OBJECT_BYTES)
            trace.emit(Op.MSG_ENTER)
        child = Message(fd.message_type, arena=arena)
        _parse_into(child, data, start, end, trace, arena,
                    keep_unknown=keep_unknown)
        if trace is not None:
            trace.emit(Op.MSG_EXIT)
        return child, end
    # Varint wire type.
    if wire_type is not WireType.VARINT:
        raise DecodeError(
            f"field {fd.name}: wire type {wire_type.name} does not match "
            f"{ft.value}")
    payload, consumed = decode_varint(data, offset)
    if trace is not None:
        trace.emit(Op.VARINT_DECODE, consumed)
        if ft in ZIGZAG_TYPES:
            trace.emit(Op.ZIGZAG)
    return _decode_varint_value(fd, payload), offset + consumed


def _decode_packed(message: Message, fd: FieldDescriptor, data: bytes,
                   offset: int, trace: Optional[Trace], arena,
                   keep_unknown: bool = False) -> int:
    """Decode a packed repeated field's length-delimited payload."""
    length, consumed = decode_varint(data, offset)
    start = offset + consumed
    end = start + length
    if end > len(data):
        raise DecodeError(f"field {fd.name}: truncated packed field")
    if trace is not None:
        trace.emit(Op.VARINT_DECODE, consumed)
        trace.emit(Op.ALLOC, max(length, 16))
    repeated = message[fd.name]
    pos = start
    element_wire = fd.wire_type
    while pos < end:
        value, pos = _decode_scalar(fd, data, pos, element_wire, trace, arena)
        repeated.append(value)
    if pos != end:
        raise DecodeError(f"field {fd.name}: packed payload overran")
    message._hasbits.add(fd.number)
    return end


def _parse_one_field(message: Message, data: bytes, pos: int, end: int,
                     trace: Optional[Trace], arena,
                     keep_unknown: bool = False) -> int:
    """Parse one field (tag onward) at ``pos``; returns the new offset.

    Shared between the interpretive loop below and the specialized
    kernels' rare-path fallback (:mod:`repro.proto.specialized`), so
    unknown fields, wire-type mismatches, and malformed keys behave
    identically on both tiers.
    """
    descriptor = message.descriptor
    field_number, wire_type, consumed = decode_tag(data, pos)
    pos += consumed
    if trace is not None:
        trace.emit(Op.TAG_DECODE, consumed)
        trace.emit(Op.FIELD_DISPATCH)
    fd = descriptor.field_by_number(field_number)
    if fd is None:
        value_start = pos
        pos = skip_field(data, pos, wire_type)
        if keep_unknown:
            # proto2 parsers preserve unrecognised fields so they
            # survive a parse/serialize round trip (schema evolution
            # for intermediaries).
            message._unknown.append(
                (field_number, int(wire_type),
                 bytes(data[value_start:pos])))
        return pos
    if fd.is_repeated:
        if (wire_type is WireType.LENGTH_DELIMITED
                and fd.wire_type is not WireType.LENGTH_DELIMITED):
            # Packed encoding of a numeric repeated field.  proto2
            # parsers must accept both encodings regardless of the
            # declared option.
            return _decode_packed(message, fd, data, pos, trace, arena,
                                  keep_unknown)
        if trace is not None and not message.has(fd.name):
            # First element of an unpacked repeated field: the parser
            # allocates the vector's initial backing array.
            trace.emit(Op.ALLOC, 64)
        value, pos = _decode_scalar(fd, data, pos, wire_type, trace,
                                    arena, keep_unknown)
        message[fd.name].append(value)
        message._hasbits.add(fd.number)
        return pos
    value, pos = _decode_scalar(fd, data, pos, wire_type, trace, arena,
                                keep_unknown)
    if (fd.field_type is FieldType.MESSAGE
            and message.has(fd.name)):
        # proto2 merge semantics for a repeated occurrence of a
        # singular sub-message field.
        message[fd.name].merge_from(value)
    else:
        message[fd.name] = value
    return pos


def _parse_into(message: Message, data: bytes, offset: int, end: int,
                trace: Optional[Trace], arena,
                keep_unknown: bool = False) -> None:
    """Parse wire bytes in [offset, end) into ``message`` (merge semantics)."""
    pos = offset
    while pos < end:
        pos = _parse_one_field(message, data, pos, end, trace, arena,
                               keep_unknown)
    if pos != end:
        raise DecodeError("message payload overran its length")


def parse_message(descriptor: MessageDescriptor, data: bytes,
                  trace: Optional[Trace] = None, arena=None,
                  keep_unknown: bool = False,
                  check_required: bool = False) -> Message:
    """Deserialize ``data`` into a new message of type ``descriptor``.

    With ``keep_unknown=True``, unrecognised fields are preserved and
    re-emitted on serialization (after the known fields), so data
    written by a newer schema survives transiting an older reader.
    With ``check_required=True``, a missing required field raises
    :class:`DecodeError` (C++ ``ParseFromString``'s IsInitialized check).

    ``data`` may be any bytes-like object; parsing runs over a single
    :class:`memoryview` so nested fields never copy wire bytes (only
    string/bytes *values* are materialised, once each).
    """
    message = Message(descriptor, arena=arena)
    kernel = None
    if trace is None:
        # Specialized codegen tier: a per-descriptor compiled parse loop
        # with the tag switch unrolled (see repro.proto.specialized).
        # Traced runs always take the interpretive path so the CPU cost
        # models see the canonical event stream.
        from repro.proto.specialized import parser_for
        kernel = parser_for(descriptor)
    view = memoryview(data)
    if kernel is not None:
        kernel(message, view, 0, len(data), arena, keep_unknown)
    else:
        _parse_into(message, view, 0, len(data), trace, arena,
                    keep_unknown=keep_unknown)
    if check_required:
        try:
            message.check_initialized()
        except Exception as error:
            raise DecodeError(str(error)) from None
    return message


def merge_from_wire(message: Message, data: bytes,
                    trace: Optional[Trace] = None,
                    keep_unknown: bool = False) -> None:
    """Parse ``data`` and merge into an existing ``message`` in place."""
    if trace is None:
        from repro.proto.specialized import parser_for
        kernel = parser_for(message.descriptor)
        if kernel is not None:
            kernel(message, memoryview(data), 0, len(data), message.arena,
                   keep_unknown)
            return
    _parse_into(message, memoryview(data), 0, len(data), trace,
                message.arena, keep_unknown=keep_unknown)
