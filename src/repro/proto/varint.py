"""Variable-length integer (varint) and zig-zag codecs.

The protobuf varint algorithm (Section 2.1.2 of the paper) consumes 7 bits
at a time from the least-significant side of a fixed-width value; each
output byte carries those 7 bits plus a continuation bit.  A 64-bit value
therefore encodes to between 1 and 10 bytes.

These functions are the single source of truth for varint handling across
the software library, the CPU cost models (which charge per encoded byte),
and the accelerator's combinational varint unit.
"""

from __future__ import annotations

from repro.proto.errors import DecodeError

#: Maximum encoded length of a 64-bit varint (ceil(64 / 7) = 10 bytes).
MAX_VARINT_LENGTH = 10

_U64_MASK = (1 << 64) - 1

#: One 0x80 continuation bit per byte of a little-endian window word.
_CONT_MASK = int.from_bytes(b"\x80" * MAX_VARINT_LENGTH, "little")


def _make_compactor(length: int):
    """Build the fixed 7-bit group-compaction expression for one length.

    A varint of ``length`` bytes, loaded little-endian into one integer,
    compacts to its value by dropping every byte's continuation bit and
    packing the remaining 7-bit groups -- a fixed shift/mask network per
    length (what the combinational hardware unit wires up in parallel).
    """
    shifts = tuple((8 * i, 7 * i) for i in range(length))

    def compact(word: int, _shifts=shifts) -> int:
        value = 0
        for byte_shift, out_shift in _shifts:
            value |= (word >> byte_shift & 0x7F) << out_shift
        return value

    return compact


#: Per-length compaction table, indexed by encoded length (1..10).
_COMPACT = (None,) + tuple(_make_compactor(n)
                           for n in range(1, MAX_VARINT_LENGTH + 1))


def encode_varint(value: int) -> bytes:
    """Encode a non-negative integer < 2**64 as a protobuf varint.

    Negative Python ints must be converted to their unsigned two's
    complement form by the caller (see :func:`encode_signed`).
    """
    if value < 0:
        raise ValueError("varint payload must be non-negative; "
                         "use encode_signed for two's-complement values")
    if value > _U64_MASK:
        raise ValueError(f"varint payload {value:#x} exceeds 64 bits")
    out = bytearray()
    while True:
        bits = value & 0x7F
        value >>= 7
        if value:
            out.append(bits | 0x80)
        else:
            out.append(bits)
            return bytes(out)


def decode_varint(data: bytes | bytearray | memoryview,
                  offset: int = 0) -> tuple[int, int]:
    """Decode a varint from ``data`` starting at ``offset``.

    Accepts any bytes-like input (``bytes``, ``bytearray``,
    ``memoryview``) so callers can parse zero-copy views over a shared
    buffer.  Returns ``(value, n_bytes_consumed)``.  Raises
    :class:`DecodeError` on a truncated varint or one longer than 10
    bytes.
    """
    if offset >= len(data) or offset < 0:
        raise DecodeError(f"truncated varint at byte {offset}",
                          offset=offset, site="varint")
    first = data[offset]
    if first < 0x80:
        return first, 1
    # Fast path: load the <=10-byte window as one little-endian word and
    # find the encoded length from the first clear continuation bit --
    # the software analogue of the accelerator's combinational scan.
    window = data[offset:offset + MAX_VARINT_LENGTH]
    nbytes = len(window)
    word = int.from_bytes(window, "little")
    stop = ~word & _CONT_MASK & (1 << 8 * nbytes) - 1
    if not stop:
        if nbytes < MAX_VARINT_LENGTH:
            raise DecodeError(
                f"truncated varint at byte {offset} "
                f"({nbytes} continuation bytes, no terminator)",
                offset=offset, site="varint")
        raise DecodeError(
            f"varint longer than {MAX_VARINT_LENGTH} bytes at byte "
            f"{offset}", offset=offset, site="varint")
    # The lowest clear continuation bit sits at bit 8*i + 7 of byte i,
    # so its bit_length is 8*(i + 1): exactly 8x the encoded length.
    length = (stop & -stop).bit_length() >> 3
    result = _COMPACT[length](word)
    if result > _U64_MASK:
        # A 10-byte varint can carry up to 70 payload bits; protobuf
        # truncates to 64 (exactly what C++ parsers do on the wire).
        result &= _U64_MASK
    return result, length


def varint_length(value: int) -> int:
    """Number of bytes :func:`encode_varint` will produce for ``value``."""
    if value < 0:
        raise ValueError("varint payload must be non-negative")
    if value == 0:
        return 1
    return (value.bit_length() + 6) // 7


def encode_signed(value: int) -> int:
    """Map a signed 64-bit int to its unsigned two's-complement varint payload.

    proto2 ``int32``/``int64`` fields encode negative values as the full
    64-bit two's complement, which is why a negative int32 costs 10 wire
    bytes -- the pathology the paper's varint-10 microbenchmark exercises.
    """
    if not -(2**63) <= value <= 2**64 - 1:
        raise ValueError(f"value {value} out of 64-bit range")
    return value & _U64_MASK


def decode_signed(payload: int, bits: int = 64) -> int:
    """Inverse of :func:`encode_signed`, reinterpreting as ``bits``-wide."""
    payload &= (1 << bits) - 1
    if payload >= 1 << (bits - 1):
        payload -= 1 << bits
    return payload


def encode_zigzag(value: int, bits: int = 64) -> int:
    """Zig-zag encode a signed integer (sint32/sint64 wire payload).

    Maps 0, -1, 1, -2, ... to 0, 1, 2, 3, ... so that small-magnitude
    negative numbers stay short on the wire.
    """
    limit = 1 << (bits - 1)
    if not -limit <= value < limit:
        raise ValueError(f"value {value} out of {bits}-bit signed range")
    return ((value << 1) ^ (value >> (bits - 1))) & ((1 << bits) - 1)


def decode_zigzag(payload: int) -> int:
    """Inverse of :func:`encode_zigzag`."""
    if payload < 0:
        raise ValueError("zig-zag payload must be non-negative")
    return (payload >> 1) ^ -(payload & 1)
