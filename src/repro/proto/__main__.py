"""protoc-style command line for the proto toolchain.

Usage::

    python -m repro.proto compile schema.proto            # generated code
    python -m repro.proto decode schema.proto M < wire    # wire -> text
    python -m repro.proto encode schema.proto M < text    # text -> hex
    python -m repro.proto decode-raw < wire               # schema-free
    python -m repro.proto reflect schema.proto            # descriptor hex

``decode``/``decode-raw`` accept hex on stdin (whitespace ignored) so
wire bytes paste cleanly into a terminal.
"""

from __future__ import annotations

import pathlib
import sys

from repro.proto.compiler import generate_source
from repro.proto.errors import ProtoError
from repro.proto.inspect import decode_raw, format_raw
from repro.proto.descriptor_pb import schema_to_file_descriptor
from repro.proto.parser import parse_schema
from repro.proto.text_format import message_from_text, message_to_text

_USAGE = __doc__ or ""


def _load_schema(path: str):
    return parse_schema(pathlib.Path(path).read_text())


def _stdin_bytes() -> bytes:
    text = sys.stdin.read()
    compact = "".join(text.split())
    if compact and all(c in "0123456789abcdefABCDEF" for c in compact) \
            and len(compact) % 2 == 0:
        return bytes.fromhex(compact)
    return text.encode("latin-1")


def main(argv: list[str], stdin_data: bytes | None = None) -> int:
    if not argv:
        print(_USAGE.strip())
        return 1
    command, *rest = argv
    try:
        if command == "compile":
            (path,) = rest
            print(generate_source(_load_schema(path)))
        elif command == "reflect":
            (path,) = rest
            blob = schema_to_file_descriptor(
                _load_schema(path), name=pathlib.Path(path).name)
            print(blob.serialize().hex())
        elif command == "decode-raw":
            data = stdin_data if stdin_data is not None else _stdin_bytes()
            print(format_raw(decode_raw(data)))
        elif command == "decode":
            path, type_name = rest
            schema = _load_schema(path)
            data = stdin_data if stdin_data is not None else _stdin_bytes()
            print(message_to_text(schema[type_name].parse(data)), end="")
        elif command == "encode":
            path, type_name = rest
            schema = _load_schema(path)
            text = (stdin_data.decode("utf-8") if stdin_data is not None
                    else sys.stdin.read())
            message = message_from_text(schema[type_name], text)
            print(message.serialize().hex())
        else:
            print(f"unknown command {command!r}")
            print(_USAGE.strip())
            return 1
    except (ProtoError, ValueError, FileNotFoundError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
