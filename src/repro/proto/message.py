"""Dynamic in-memory protobuf messages.

A :class:`Message` is the Python analogue of the C++ generated-class object
described in Section 2.1.3 of the paper: scalar fields behave like C++
primitives, string/bytes fields like ``std::string``, repeated fields like
vectors, and sub-message fields like pointers to child objects.  Presence is
tracked per-field in a *hasbits* set, mirroring protoc's generated hasbits
member that the paper's accelerator repurposes (Section 4.2).

Values are validated eagerly on assignment so that serialization never has
to guess (the same contract the generated C++ setters provide).
"""

from __future__ import annotations

import math
import struct
from typing import Iterator

from repro.proto.descriptor import FieldDescriptor, MessageDescriptor
from repro.proto.errors import EncodeError
from repro.proto.types import FieldType, int_range


def _check_scalar(fd: FieldDescriptor, value):
    """Validate and normalise one scalar value for field ``fd``."""
    ft = fd.field_type
    if ft is FieldType.BOOL:
        if not isinstance(value, (bool, int)):
            raise TypeError(f"{fd.name}: expected bool, got {type(value)}")
        return bool(value)
    if ft in (FieldType.FLOAT, FieldType.DOUBLE):
        if not isinstance(value, (int, float)):
            raise TypeError(f"{fd.name}: expected float, got {type(value)}")
        value = float(value)
        if ft is FieldType.FLOAT and math.isfinite(value):
            # Round-trip through IEEE single precision, as a C++ float would.
            value = struct.unpack("<f", struct.pack("<f", value))[0]
        return value
    if ft is FieldType.STRING:
        if not isinstance(value, str):
            raise TypeError(f"{fd.name}: expected str, got {type(value)}")
        return value
    if ft is FieldType.BYTES:
        if not isinstance(value, (bytes, bytearray, memoryview)):
            raise TypeError(f"{fd.name}: expected bytes, got {type(value)}")
        return bytes(value)
    if ft is FieldType.MESSAGE:
        if not isinstance(value, Message):
            raise TypeError(f"{fd.name}: expected Message, got {type(value)}")
        assert fd.message_type is not None
        if value.descriptor is not fd.message_type:
            raise TypeError(
                f"{fd.name}: expected {fd.message_type.name}, "
                f"got {value.descriptor.name}")
        return value
    if ft is FieldType.ENUM:
        if isinstance(value, str):
            assert fd.enum_type is not None
            if value not in fd.enum_type.values:
                raise ValueError(f"{fd.name}: unknown enum value {value!r}")
            value = fd.enum_type.values[value]
        if not isinstance(value, int):
            raise TypeError(f"{fd.name}: expected enum int/name")
        lo, hi = int_range(FieldType.ENUM)
        if not lo <= value <= hi:
            raise ValueError(f"{fd.name}: enum value {value} out of range")
        return value
    # Integer types.
    if isinstance(value, bool) or not isinstance(value, int):
        raise TypeError(f"{fd.name}: expected int, got {type(value)}")
    lo, hi = int_range(ft)
    if not lo <= value <= hi:
        raise ValueError(
            f"{fd.name}: value {value} out of range for {ft.value}")
    return value


def _values_equal(a, b) -> bool:
    """Value equality with NaN == NaN (for float/double payloads).

    Differential tests compare independently-decoded messages; two NaN
    doubles decoded from the same wire bytes must compare equal (the
    C++ MessageDifferencer's ``treat_nan_as_equal`` behaviour), which
    plain ``==`` denies for distinct float objects.
    """
    if a is b:
        return True
    if isinstance(a, float) and isinstance(b, float):
        return a == b or (a != a and b != b)
    return a == b


class RepeatedField:
    """A validated list of elements of one field's type."""

    __slots__ = ("_fd", "_items")

    def __init__(self, fd: FieldDescriptor, items=()):
        self._fd = fd
        self._items: list = []
        self.extend(items)

    def append(self, value) -> None:
        self._items.append(_check_scalar(self._fd, value))

    def extend(self, values) -> None:
        for value in values:
            self.append(value)

    def add(self) -> "Message":
        """Append and return a new empty sub-message (message fields only)."""
        if self._fd.field_type is not FieldType.MESSAGE:
            raise TypeError(f"{self._fd.name}: add() needs a message field")
        assert self._fd.message_type is not None
        child = Message(self._fd.message_type)
        self._items.append(child)
        return child

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator:
        return iter(self._items)

    def __getitem__(self, index):
        return self._items[index]

    def __setitem__(self, index, value) -> None:
        self._items[index] = _check_scalar(self._fd, value)

    def __eq__(self, other) -> bool:
        if isinstance(other, RepeatedField):
            other = other._items
        elif not isinstance(other, (list, tuple)):
            return NotImplemented
        if len(self._items) != len(other):
            return False
        return all(_values_equal(a, b)
                   for a, b in zip(self._items, other))

    def __repr__(self) -> str:
        return f"RepeatedField({self._fd.name}, {self._items!r})"


class Message:
    """A dynamic protobuf message instance.

    Field access uses subscript syntax (``msg['x']``); presence is explicit
    via :meth:`has` and :meth:`clear_field`.  Reading an absent singular
    field returns the proto2 default, exactly as generated C++ getters do.
    """

    __slots__ = ("descriptor", "_values", "_hasbits", "arena",
                 "_unknown")

    def __init__(self, descriptor: MessageDescriptor, arena=None):
        self.descriptor = descriptor
        self._values: dict[int, object] = {}
        self._hasbits: set[int] = set()
        #: Preserved unknown fields: (field_number, wire_type_value,
        #: value_bytes) triples, kept only when parsing with
        #: keep_unknown=True and re-emitted after known fields.
        self._unknown: list[tuple[int, int, bytes]] = []
        self.arena = arena
        if arena is not None:
            arena.register(self)

    # -- field access -------------------------------------------------------

    def _field(self, name: str) -> FieldDescriptor:
        fd = self.descriptor.field_by_name(name)
        if fd is None:
            raise KeyError(
                f"{self.descriptor.name} has no field named {name!r}")
        return fd

    def __getitem__(self, name: str):
        fd = self._field(name)
        if fd.is_repeated:
            existing = self._values.get(fd.number)
            if existing is None:
                existing = RepeatedField(fd)
                self._values[fd.number] = existing
            return existing
        if fd.number in self._hasbits:
            return self._values[fd.number]
        return fd.default_scalar()

    def _clear_oneof_siblings(self, fd: FieldDescriptor) -> None:
        for number in self.descriptor.oneof_siblings(fd.number):
            self._values.pop(number, None)
            self._hasbits.discard(number)

    def __setitem__(self, name: str, value) -> None:
        fd = self._field(name)
        if fd.oneof_group is not None:
            self._clear_oneof_siblings(fd)
        if fd.is_repeated:
            if isinstance(value, RepeatedField):
                value = list(value)
            if not isinstance(value, (list, tuple)):
                raise TypeError(f"{name}: repeated field needs a sequence")
            self._values[fd.number] = RepeatedField(fd, value)
            self._hasbits.add(fd.number)
            return
        self._values[fd.number] = _check_scalar(fd, value)
        self._hasbits.add(fd.number)

    def has(self, name: str) -> bool:
        """True if the field was explicitly set (or, for repeated fields,
        is non-empty)."""
        fd = self._field(name)
        if fd.is_repeated:
            value = self._values.get(fd.number)
            return value is not None and len(value) > 0
        return fd.number in self._hasbits

    def mutable(self, name: str) -> "Message":
        """Return the sub-message for ``name``, creating it if absent.

        Mirrors C++ ``mutable_foo()``.
        """
        fd = self._field(name)
        if fd.field_type is not FieldType.MESSAGE or fd.is_repeated:
            raise TypeError(f"{name}: mutable() needs a singular sub-message")
        if fd.number not in self._hasbits:
            if fd.oneof_group is not None:
                self._clear_oneof_siblings(fd)
            assert fd.message_type is not None
            child = Message(fd.message_type, arena=self.arena)
            self._values[fd.number] = child
            self._hasbits.add(fd.number)
        value = self._values[fd.number]
        assert isinstance(value, Message)
        return value

    def clear_field(self, name: str) -> None:
        fd = self._field(name)
        self._values.pop(fd.number, None)
        self._hasbits.discard(fd.number)

    def clear(self) -> None:
        """Clear every field (C++ ``Clear()``)."""
        self._values.clear()
        self._hasbits.clear()
        self._unknown.clear()

    @property
    def unknown_fields(self) -> tuple[tuple[int, int, bytes], ...]:
        """Preserved unknown fields (number, wire type, value bytes)."""
        return tuple(self._unknown)

    def present_field_numbers(self) -> list[int]:
        """Field numbers with presence set, in increasing order.

        Repeated fields count as present when non-empty, matching how the
        serializer (and the accelerator's hasbits scan) treats them.
        """
        numbers = []
        for fd in self.descriptor.fields:
            if self.has(fd.name):
                numbers.append(fd.number)
        return numbers

    def usage_density(self) -> float:
        """The paper's Section 3.7 field-number usage density metric."""
        return self.descriptor.usage_density(len(self.present_field_numbers()))

    def which_oneof(self, group: str):
        """The name of the set member of ``group``, or None."""
        numbers = self.descriptor.oneof_groups.get(group)
        if numbers is None:
            raise KeyError(f"{self.descriptor.name} has no oneof {group!r}")
        for number in numbers:
            if number in self._hasbits:
                fd = self.descriptor.field_by_number(number)
                assert fd is not None
                return fd.name
        return None

    # -- map fields -----------------------------------------------------------

    def _map_field(self, name: str) -> FieldDescriptor:
        fd = self._field(name)
        if not fd.is_map:
            raise TypeError(f"{name} is not a map field")
        return fd

    def map_set(self, name: str, key, value) -> None:
        """Insert or overwrite one map entry (last key wins, as the
        protobuf map wire contract specifies)."""
        self._map_field(name)
        for entry in self[name]:
            if entry["key"] == key:
                entry["value"] = value
                return
        entry = self[name].add()
        entry["key"] = key
        entry["value"] = value

    def map_get(self, name: str, key, default=None):
        """Look up one map entry's value."""
        self._map_field(name)
        for entry in self[name]:
            if entry["key"] == key:
                return entry["value"]
        return default

    def map_remove(self, name: str, key) -> bool:
        """Delete one entry; returns True if it existed."""
        self._map_field(name)
        entries = self[name]
        for index, entry in enumerate(entries):
            if entry["key"] == key:
                del entries._items[index]
                if not entries:
                    self._hasbits.discard(self._field(name).number)
                return True
        return False

    def map_as_dict(self, name: str) -> dict:
        """The map's contents as a plain dict (later keys win)."""
        self._map_field(name)
        return {entry["key"]: entry["value"] for entry in self[name]}

    # -- whole-message operations --------------------------------------------

    def merge_from(self, other: "Message") -> None:
        """Protobuf MergeFrom: singular fields overwrite, repeated append,
        sub-messages merge recursively."""
        if other.descriptor is not self.descriptor:
            raise TypeError("cannot merge messages of different types")
        for fd in other.descriptor.fields:
            if not other.has(fd.name):
                continue
            if fd.is_repeated:
                self[fd.name].extend(
                    item.copy() if isinstance(item, Message) else item
                    for item in other[fd.name])
                self._hasbits.add(fd.number)
            elif fd.field_type is FieldType.MESSAGE:
                self.mutable(fd.name).merge_from(other[fd.name])
            else:
                self[fd.name] = other[fd.name]
        self._unknown.extend(other._unknown)

    def copy(self) -> "Message":
        """Deep copy (C++ copy constructor / ``CopyFrom``)."""
        clone = Message(self.descriptor)
        clone.merge_from(self)
        return clone

    def __eq__(self, other) -> bool:
        if not isinstance(other, Message):
            return NotImplemented
        if self.descriptor is not other.descriptor:
            return False
        for fd in self.descriptor.fields:
            if self.has(fd.name) != other.has(fd.name):
                return False
            if not self.has(fd.name):
                continue
            if fd.is_map:
                # Maps are semantically unordered: compare the final
                # key -> value mapping (later entries win), not the
                # underlying entry order.
                if self.map_as_dict(fd.name) != other.map_as_dict(fd.name):
                    return False
            elif not _values_equal(self[fd.name], other[fd.name]):
                return False
        return self._unknown == other._unknown

    def __repr__(self) -> str:
        present = ", ".join(
            f"{fd.name}={self[fd.name]!r}"
            for fd in self.descriptor.fields if self.has(fd.name))
        return f"{self.descriptor.name}({present})"

    # -- serialization convenience --------------------------------------------

    def serialize(self) -> bytes:
        """Serialize to the protobuf wire format (software path)."""
        from repro.proto.encoder import serialize_message

        return serialize_message(self)

    def byte_size(self) -> int:
        """Encoded size in bytes (C++ ``ByteSizeLong``)."""
        from repro.proto.encoder import byte_size

        return byte_size(self)

    def check_initialized(self) -> None:
        """Raise :class:`EncodeError` if any required field is missing."""
        for fd in self.descriptor.fields:
            if fd.is_required and not self.has(fd.name):
                raise EncodeError(
                    f"{self.descriptor.name}.{fd.name} is required but unset")
            if fd.field_type is FieldType.MESSAGE and self.has(fd.name):
                if fd.is_repeated:
                    for child in self[fd.name]:
                        child.check_initialized()
                else:
                    child = self[fd.name]
                    if isinstance(child, Message):
                        child.check_initialized()

    def total_depth(self) -> int:
        """Maximum sub-message nesting depth (top-level message = depth 1).

        Used by the fleet study's depth distribution (Section 3.8).
        """
        deepest = 1
        for fd in self.descriptor.fields:
            if fd.field_type is not FieldType.MESSAGE or not self.has(fd.name):
                continue
            children = self[fd.name] if fd.is_repeated else [self[fd.name]]
            for child in children:
                if isinstance(child, Message):
                    deepest = max(deepest, 1 + child.total_depth())
        return deepest
