"""Schema descriptors: the compiled, validated form of a .proto file.

Descriptors play the role of ``protoc``'s internal representation: each
message type gets a :class:`MessageDescriptor` with fields indexed by both
name and field number, the hasbit index assignment the C++ code generator
would produce, and the (min, max) defined field-number range that the
accelerator's ADTs and sparse hasbits are built from (Sections 3.7/4.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.proto.errors import SchemaError
from repro.proto.types import (
    FieldType,
    Label,
    WireType,
    is_packable,
    wire_type_for,
)

#: Field numbers 19000-19999 are reserved by the protobuf implementation.
RESERVED_RANGE = range(19000, 20000)

#: Largest legal field number (2**29 - 1).
MAX_FIELD_NUMBER = (1 << 29) - 1


@dataclass(frozen=True)
class EnumDescriptor:
    """A proto2 enum type: named 32-bit integer constants."""

    name: str
    values: dict[str, int]

    def __post_init__(self) -> None:
        if not self.values:
            raise SchemaError(f"enum {self.name} has no values")

    def value_names(self) -> list[str]:
        return list(self.values)

    def default_value(self) -> int:
        """proto2 enum default: the first declared value."""
        return next(iter(self.values.values()))

    def has_number(self, number: int) -> bool:
        return number in self.values.values()


@dataclass
class FieldDescriptor:
    """One field declaration inside a message type."""

    name: str
    number: int
    field_type: FieldType
    label: Label = Label.OPTIONAL
    #: For MESSAGE fields: the sub-message type name (resolved lazily).
    type_name: Optional[str] = None
    #: For ENUM fields: the enum descriptor.
    enum_type: Optional[EnumDescriptor] = None
    #: True if a repeated scalar field uses the packed encoding.
    packed: bool = False
    #: Explicit proto2 default value, if declared.
    default: object = None
    #: Index of this field's presence bit (assigned by MessageDescriptor).
    hasbit_index: int = -1
    #: Resolved sub-message descriptor (filled in by Schema.resolve).
    message_type: Optional["MessageDescriptor"] = None
    #: proto3 string fields must carry valid UTF-8; parsers (and the
    #: accelerator -- Section 7) validate payloads on deserialization.
    validate_utf8: bool = False
    #: Name of the oneof group this field belongs to, if any.  Setting a
    #: oneof member clears its siblings (exactly-one-of semantics).
    oneof_group: Optional[str] = None

    def __post_init__(self) -> None:
        if not 1 <= self.number <= MAX_FIELD_NUMBER:
            raise SchemaError(
                f"field {self.name}: number {self.number} out of range")
        if self.number in RESERVED_RANGE:
            raise SchemaError(
                f"field {self.name}: number {self.number} is reserved")
        if self.field_type is FieldType.GROUP:
            raise SchemaError("groups are deprecated and not supported")
        if self.packed:
            if self.label is not Label.REPEATED:
                raise SchemaError(
                    f"field {self.name}: packed requires repeated")
            if not is_packable(self.field_type):
                raise SchemaError(
                    f"field {self.name}: type {self.field_type.value} "
                    "cannot be packed")
        if self.field_type is FieldType.MESSAGE and not self.type_name:
            raise SchemaError(f"field {self.name}: message type missing name")
        if self.field_type is FieldType.ENUM and self.enum_type is None:
            raise SchemaError(f"field {self.name}: enum type missing")

    @property
    def is_repeated(self) -> bool:
        return self.label is Label.REPEATED

    @property
    def is_required(self) -> bool:
        return self.label is Label.REQUIRED

    @property
    def is_message(self) -> bool:
        return self.field_type is FieldType.MESSAGE

    @property
    def is_map(self) -> bool:
        """True if this is a map field (repeated synthesized entry)."""
        return (self.message_type is not None
                and self.message_type.is_map_entry)

    @property
    def wire_type(self) -> WireType:
        """Wire type of one element of this field on the wire.

        Packed repeated fields go on the wire as LENGTH_DELIMITED; this
        property reports the *element* wire type (the packed framing is the
        encoder's concern).
        """
        return wire_type_for(self.field_type)

    def default_scalar(self) -> object:
        """The proto2 default value read back for an absent singular field."""
        if self.default is not None:
            return self.default
        if self.field_type in (FieldType.STRING,):
            return ""
        if self.field_type is FieldType.BYTES:
            return b""
        if self.field_type is FieldType.BOOL:
            return False
        if self.field_type in (FieldType.FLOAT, FieldType.DOUBLE):
            return 0.0
        if self.field_type is FieldType.ENUM:
            assert self.enum_type is not None
            return self.enum_type.default_value()
        if self.field_type is FieldType.MESSAGE:
            return None
        return 0


class MessageDescriptor:
    """A message type: an ordered collection of validated fields.

    Exposes the quantities the accelerator's programming tables need:
    ``min_field_number`` / ``max_field_number`` (ADT header, Section 4.2),
    ``field_number_span`` (sparse hasbits sizing), and the paper's
    field-number usage *density* metric (Section 3.7).
    """

    def __init__(self, name: str, fields: list[FieldDescriptor],
                 full_name: Optional[str] = None,
                 is_map_entry: bool = False):
        if not name:
            raise SchemaError("message must have a name")
        self.name = name
        self.full_name = full_name or name
        #: True for the synthesized KeyValue entry type behind a map
        #: field (maps are wire-format sugar for repeated entries).
        self.is_map_entry = is_map_entry
        self._fields_by_number: dict[int, FieldDescriptor] = {}
        self._fields_by_name: dict[str, FieldDescriptor] = {}
        for fd in fields:
            if fd.number in self._fields_by_number:
                raise SchemaError(
                    f"{name}: duplicate field number {fd.number}")
            if fd.name in self._fields_by_name:
                raise SchemaError(f"{name}: duplicate field name {fd.name}")
            self._fields_by_number[fd.number] = fd
            self._fields_by_name[fd.name] = fd
        # Hasbit indices follow declaration order, as protoc does.
        for index, fd in enumerate(fields):
            fd.hasbit_index = index
        self.fields: tuple[FieldDescriptor, ...] = tuple(fields)
        self.oneof_groups: dict[str, tuple[int, ...]] = {}
        groups: dict[str, list[int]] = {}
        for fd in fields:
            if fd.oneof_group is None:
                continue
            if fd.is_repeated or fd.is_required:
                raise SchemaError(
                    f"{name}.{fd.name}: oneof members must be singular "
                    "optional fields")
            groups.setdefault(fd.oneof_group, []).append(fd.number)
        self.oneof_groups = {group: tuple(numbers)
                             for group, numbers in groups.items()}
        self._schema: Optional["Schema"] = None

    def __repr__(self) -> str:
        return f"MessageDescriptor({self.full_name!r}, {len(self.fields)} fields)"

    def __iter__(self) -> Iterator[FieldDescriptor]:
        return iter(self.fields)

    def field_by_number(self, number: int) -> Optional[FieldDescriptor]:
        return self._fields_by_number.get(number)

    def field_by_name(self, name: str) -> Optional[FieldDescriptor]:
        return self._fields_by_name.get(name)

    @property
    def min_field_number(self) -> int:
        if not self.fields:
            return 0
        return min(self._fields_by_number)

    @property
    def max_field_number(self) -> int:
        if not self.fields:
            return 0
        return max(self._fields_by_number)

    @property
    def field_number_span(self) -> int:
        """Size of the field-number range [min, max] (0 for empty types)."""
        if not self.fields:
            return 0
        return self.max_field_number - self.min_field_number + 1

    def usage_density(self, present_fields: int) -> float:
        """Section 3.7 density: present fields / defined field-number span."""
        if self.field_number_span == 0:
            return 0.0
        return present_fields / self.field_number_span

    def oneof_siblings(self, field_number: int) -> tuple[int, ...]:
        """Other field numbers sharing a oneof with ``field_number``."""
        fd = self.field_by_number(field_number)
        if fd is None or fd.oneof_group is None:
            return ()
        return tuple(number
                     for number in self.oneof_groups[fd.oneof_group]
                     if number != field_number)

    def new_message(self, arena=None):
        """Construct an empty dynamic message of this type."""
        from repro.proto.message import Message

        return Message(self, arena=arena)

    def parse(self, data: bytes, arena=None):
        """Deserialize wire-format ``data`` into a new message."""
        from repro.proto.decoder import parse_message

        return parse_message(self, data, arena=arena)


def structural_fingerprint(descriptor: MessageDescriptor) -> str:
    """A stable digest of a message type's wire-relevant structure.

    Two descriptors with equal fingerprints parse and serialize any given
    wire buffer identically (same field numbers, types, labels, packing,
    oneof grouping, UTF-8 validation flags, and recursively the same
    sub-message structure), so the fingerprint is a sound cache key for
    deterministic cycle accounting.  Cyclic type graphs are handled by
    numbering types in first-visit order.
    """
    cached = getattr(descriptor, "_structural_fp", None)
    if cached is not None:
        return cached
    import hashlib

    order: dict[int, int] = {}
    parts: list[str] = []

    def visit(md: MessageDescriptor) -> int:
        key = id(md)
        if key in order:
            return order[key]
        index = order[key] = len(order)
        fields = []
        for fd in md.fields:
            sub = visit(fd.message_type) if fd.message_type is not None \
                else -1
            enum = (tuple(sorted(fd.enum_type.values.items()))
                    if fd.enum_type is not None else None)
            fields.append((fd.number, fd.field_type.value, fd.label.value,
                           fd.packed, repr(fd.default), fd.validate_utf8,
                           fd.oneof_group, sub, enum))
        parts.append(f"{index}:{md.full_name}:{fields!r}")
        return index

    visit(descriptor)
    fingerprint = hashlib.sha256(
        "|".join(parts).encode()).hexdigest()[:32]
    descriptor._structural_fp = fingerprint
    return fingerprint


@dataclass(frozen=True)
class MethodDescriptor:
    """One rpc method in a service definition."""

    name: str
    input_type: str
    output_type: str
    client_streaming: bool = False
    server_streaming: bool = False
    #: Resolved descriptors (filled by Schema.resolve).
    input_descriptor: Optional[MessageDescriptor] = None
    output_descriptor: Optional[MessageDescriptor] = None


class ServiceDescriptor:
    """A service: a named set of rpc methods (Section 2: protobuf is a
    data *and service* description system)."""

    def __init__(self, name: str, methods: list[MethodDescriptor]):
        if not name:
            raise SchemaError("service must have a name")
        self.name = name
        self._methods: dict[str, MethodDescriptor] = {}
        for method in methods:
            if method.name in self._methods:
                raise SchemaError(
                    f"service {name}: duplicate method {method.name}")
            self._methods[method.name] = method

    @property
    def methods(self) -> tuple[MethodDescriptor, ...]:
        return tuple(self._methods.values())

    def method(self, name: str) -> MethodDescriptor:
        try:
            return self._methods[name]
        except KeyError:
            raise SchemaError(
                f"service {self.name} has no method {name!r}") from None

    def full_method_name(self, name: str) -> str:
        self.method(name)
        return f"/{self.name}/{name}"

    def _resolve(self, schema: "Schema") -> None:
        for method_name, method in list(self._methods.items()):
            for attr in ("input_type", "output_type"):
                type_name = getattr(method, attr)
                if type_name not in schema:
                    raise SchemaError(
                        f"{self.name}.{method_name}: unknown message "
                        f"type {type_name}")
            self._methods[method_name] = MethodDescriptor(
                name=method.name,
                input_type=method.input_type,
                output_type=method.output_type,
                client_streaming=method.client_streaming,
                server_streaming=method.server_streaming,
                input_descriptor=schema[method.input_type],
                output_descriptor=schema[method.output_type])


class Schema:
    """A set of message, enum, and service types from one .proto source.

    Subscript by message name to get its descriptor::

        schema['Point'].new_message()
    """

    def __init__(self, package: str = ""):
        self.package = package
        self._messages: dict[str, MessageDescriptor] = {}
        self._enums: dict[str, EnumDescriptor] = {}
        self._services: dict[str, ServiceDescriptor] = {}
        self.syntax = "proto2"

    def add_message(self, descriptor: MessageDescriptor) -> None:
        if descriptor.name in self._messages:
            raise SchemaError(f"duplicate message type {descriptor.name}")
        descriptor._schema = self
        self._messages[descriptor.name] = descriptor

    def add_enum(self, descriptor: EnumDescriptor) -> None:
        if descriptor.name in self._enums:
            raise SchemaError(f"duplicate enum type {descriptor.name}")
        self._enums[descriptor.name] = descriptor

    def __getitem__(self, name: str) -> MessageDescriptor:
        try:
            return self._messages[name]
        except KeyError:
            raise SchemaError(f"unknown message type {name}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._messages

    def messages(self) -> list[MessageDescriptor]:
        return list(self._messages.values())

    def enum(self, name: str) -> EnumDescriptor:
        try:
            return self._enums[name]
        except KeyError:
            raise SchemaError(f"unknown enum type {name}") from None

    def enums(self) -> list[EnumDescriptor]:
        return list(self._enums.values())

    def add_service(self, descriptor: ServiceDescriptor) -> None:
        if descriptor.name in self._services:
            raise SchemaError(f"duplicate service {descriptor.name}")
        self._services[descriptor.name] = descriptor

    def service(self, name: str) -> ServiceDescriptor:
        try:
            return self._services[name]
        except KeyError:
            raise SchemaError(f"unknown service {name}") from None

    def services(self) -> list[ServiceDescriptor]:
        return list(self._services.values())

    def resolve(self) -> None:
        """Resolve all message-typed fields and service method types.

        Must be called once after all types are added; the parser does this
        automatically.  Raises :class:`SchemaError` on dangling references.
        """
        for message in self._messages.values():
            for fd in message.fields:
                if fd.field_type is FieldType.MESSAGE:
                    if fd.type_name not in self._messages:
                        raise SchemaError(
                            f"{message.name}.{fd.name}: unknown message "
                            f"type {fd.type_name}")
                    fd.message_type = self._messages[fd.type_name]
        for service in self._services.values():
            service._resolve(self)
