"""The software protobuf serializer and ByteSize pass.

This is the baseline the paper accelerates: a faithful model of the C++
library's two-pass serialization (``ByteSizeLong`` then ``Serialize``),
writing fields in increasing field-number order from low to high addresses.
The accelerator's serializer must produce byte-identical output despite
iterating in *reverse* order (Section 4.5.1); our test suite pins that
equivalence.

Pass a :class:`~repro.proto.trace.Trace` to record the primitive-operation
event stream consumed by the CPU cost models.
"""

from __future__ import annotations

import struct
from typing import Optional

from repro.proto.descriptor import FieldDescriptor
from repro.proto.errors import EncodeError
from repro.proto.message import Message
from repro.proto.trace import Op, Trace
from repro.proto.types import (
    FIXED_WIDTH_BYTES,
    FieldType,
    WireType,
    ZIGZAG_TYPES,
)
from repro.proto.varint import (
    encode_signed,
    encode_varint,
    encode_zigzag,
    varint_length,
)
from repro.proto.wire import encode_tag, tag_length

_STRUCT_FORMATS = {
    FieldType.DOUBLE: "<d",
    FieldType.FLOAT: "<f",
    FieldType.FIXED32: "<I",
    FieldType.FIXED64: "<Q",
    FieldType.SFIXED32: "<i",
    FieldType.SFIXED64: "<q",
}


def _varint_payload(fd: FieldDescriptor, value) -> int:
    """Map a field value to its unsigned varint wire payload."""
    ft = fd.field_type
    if ft is FieldType.BOOL:
        return 1 if value else 0
    if ft in ZIGZAG_TYPES:
        return encode_zigzag(int(value))
    return encode_signed(int(value))


def scalar_wire_size(fd: FieldDescriptor, value) -> int:
    """Encoded size of one element's *value* (no key, no length prefix)."""
    ft = fd.field_type
    if ft in FIXED_WIDTH_BYTES:
        return FIXED_WIDTH_BYTES[ft]
    if ft is FieldType.STRING:
        encoded = len(value.encode("utf-8"))
        return varint_length(encoded) + encoded
    if ft is FieldType.BYTES:
        return varint_length(len(value)) + len(value)
    if ft is FieldType.MESSAGE:
        size = byte_size(value)
        return varint_length(size) + size
    return varint_length(_varint_payload(fd, value))


def _field_byte_size(fd: FieldDescriptor, value, trace: Optional[Trace]) -> int:
    """Encoded size of a whole field including key(s)."""
    if trace is not None:
        trace.emit(Op.BYTESIZE_FIELD)
    key_len = tag_length(fd.number, _outer_wire_type(fd))
    if not fd.is_repeated:
        return key_len + scalar_wire_size(fd, value)
    if fd.packed:
        payload = sum(scalar_wire_size(fd, item) for item in value)
        return key_len + varint_length(payload) + payload
    return sum(key_len + scalar_wire_size(fd, item) for item in value)


def _outer_wire_type(fd: FieldDescriptor) -> WireType:
    """Wire type of the field's key as written on the wire."""
    if fd.is_repeated and fd.packed:
        return WireType.LENGTH_DELIMITED
    return fd.wire_type


def byte_size(message: Message, trace: Optional[Trace] = None) -> int:
    """Total encoded size of ``message`` (C++ ``ByteSizeLong``).

    Walks every *defined* field (the hasbits scan the paper discusses in
    Section 3.7) and sizes the present ones, recursing into sub-messages;
    preserved unknown fields count too.
    """
    total = 0
    for fd in message.descriptor.fields:
        if trace is not None:
            trace.emit(Op.FIELD_CHECK)
        if not message.has(fd.name):
            continue
        total += _field_byte_size(fd, message[fd.name], trace)
    for number, wire_value, value_bytes in message._unknown:
        total += tag_length(number, WireType(wire_value))
        total += len(value_bytes)
    return total


def _encode_scalar(out: bytearray, fd: FieldDescriptor, value,
                   trace: Optional[Trace]) -> None:
    """Append one element's value bytes (no key)."""
    ft = fd.field_type
    if ft in _STRUCT_FORMATS:
        out += struct.pack(_STRUCT_FORMATS[ft], value)
        if trace is not None:
            trace.emit(Op.FIXED_WRITE, FIXED_WIDTH_BYTES[ft])
        return
    if ft in (FieldType.STRING, FieldType.BYTES):
        payload = value.encode("utf-8") if ft is FieldType.STRING else value
        length_bytes = encode_varint(len(payload))
        out += length_bytes
        out += payload
        if trace is not None:
            trace.emit(Op.VARINT_ENCODE, len(length_bytes))
            trace.emit(Op.MEMCPY, len(payload))
        return
    if ft is FieldType.MESSAGE:
        body_size = byte_size(value)
        length_bytes = encode_varint(body_size)
        out += length_bytes
        if trace is not None:
            trace.emit(Op.VARINT_ENCODE, len(length_bytes))
            trace.emit(Op.MSG_ENTER)
        _encode_message(out, value, trace)
        if trace is not None:
            trace.emit(Op.MSG_EXIT)
        return
    if ft in ZIGZAG_TYPES and trace is not None:
        trace.emit(Op.ZIGZAG)
    payload_bytes = encode_varint(_varint_payload(fd, value))
    out += payload_bytes
    if trace is not None:
        trace.emit(Op.VARINT_ENCODE, len(payload_bytes))


def _encode_field(out: bytearray, fd: FieldDescriptor, value,
                  trace: Optional[Trace]) -> None:
    key = encode_tag(fd.number, _outer_wire_type(fd))
    if not fd.is_repeated:
        out += key
        if trace is not None:
            trace.emit(Op.TAG_ENCODE, len(key))
        _encode_scalar(out, fd, value, trace)
        return
    if fd.packed:
        out += key
        if trace is not None:
            trace.emit(Op.TAG_ENCODE, len(key))
        payload = bytearray()
        for item in value:
            _encode_scalar(payload, fd, item, trace)
        length_bytes = encode_varint(len(payload))
        # Re-order: the length prefix precedes the payload on the wire.
        out += length_bytes
        out += payload
        if trace is not None:
            trace.emit(Op.VARINT_ENCODE, len(length_bytes))
        return
    for item in value:
        out += key
        if trace is not None:
            trace.emit(Op.TAG_ENCODE, len(key))
        _encode_scalar(out, fd, item, trace)


def _encode_message(out: bytearray, message: Message,
                    trace: Optional[Trace]) -> None:
    for fd in message.descriptor.fields:
        if trace is not None:
            trace.emit(Op.FIELD_CHECK)
        if not message.has(fd.name):
            continue
        _encode_field(out, fd, message[fd.name], trace)
    # Preserved unknown fields re-emit verbatim after the known fields,
    # matching upstream's UnknownFieldSet placement.
    for number, wire_value, value_bytes in message._unknown:
        out += encode_tag(number, WireType(wire_value))
        out += value_bytes
        if trace is not None:
            trace.emit(Op.MEMCPY, len(value_bytes))


def serialize_message(message: Message, trace: Optional[Trace] = None,
                      check_required: bool = True) -> bytes:
    """Serialize ``message`` to wire bytes (software path).

    Performs the ByteSize pass first (as the C++ library does -- the paper's
    Figure 2 attributes 6.0% of protobuf cycles to Byte Size, virtually all
    called from serialization), then the encode pass.
    """
    if check_required:
        message.check_initialized()
    if trace is None:
        # Specialized codegen tier: per-descriptor compiled ByteSize +
        # encode passes with sub-message sizes computed once (see
        # repro.proto.specialized).  Traced runs stay interpretive so
        # the CPU cost models see the canonical event stream.
        from repro.proto.specialized import encoder_for
        kernel = encoder_for(message.descriptor)
        if kernel is not None:
            return kernel(message)
    expected = byte_size(message, trace)
    out = bytearray()
    _encode_message(out, message, trace)
    if len(out) != expected:
        raise EncodeError(
            f"ByteSize pass predicted {expected} bytes but encoder wrote "
            f"{len(out)} -- internal inconsistency")
    return bytes(out)
