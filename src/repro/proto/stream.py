"""Length-delimited message streams (``writeDelimitedTo`` and friends).

Protobuf messages carry no self-delimiting framing, so streams and log
files prefix each message with its varint-encoded length -- the framing
the upstream library exposes as ``writeDelimitedTo`` /
``parseDelimitedFrom``.  Storage systems (a major non-RPC serialization
user per Section 3.4) lean on exactly this format.
"""

from __future__ import annotations

from typing import Iterator

from repro.proto.decoder import parse_message
from repro.proto.descriptor import MessageDescriptor
from repro.proto.errors import DecodeError
from repro.proto.message import Message
from repro.proto.varint import decode_varint, encode_varint


def write_delimited(message: Message) -> bytes:
    """One message framed with its varint length prefix."""
    payload = message.serialize()
    return encode_varint(len(payload)) + payload


def write_delimited_stream(messages: list[Message]) -> bytes:
    """Frame a batch of messages into one contiguous stream."""
    return b"".join(write_delimited(message) for message in messages)


def iter_delimited_payloads(data: bytes) -> Iterator[memoryview]:
    """Yield each framed message's wire bytes from a stream.

    Payloads are zero-copy :class:`memoryview` slices over the single
    input buffer; pass them straight to :func:`parse_message` (or wrap
    in ``bytes()`` if an owning copy is needed).
    """
    view = memoryview(data)
    offset = 0
    end_of_stream = len(view)
    while offset < end_of_stream:
        length, consumed = decode_varint(view, offset)
        offset += consumed
        end = offset + length
        if end > end_of_stream:
            raise DecodeError("truncated delimited stream")
        yield view[offset:end]
        offset = end


def read_delimited_stream(descriptor: MessageDescriptor,
                          data: bytes) -> list[Message]:
    """Parse every framed message in the stream (software path)."""
    return [parse_message(descriptor, payload)
            for payload in iter_delimited_payloads(data)]


class DelimitedWriter:
    """Incrementally build a delimited stream (an appendable log)."""

    def __init__(self) -> None:
        self._chunks: list[bytes] = []
        self.message_count = 0

    def append(self, message: Message) -> int:
        """Frame and append; returns the framed size in bytes."""
        framed = write_delimited(message)
        self._chunks.append(framed)
        self.message_count += 1
        return len(framed)

    def append_wire(self, payload: bytes) -> int:
        """Frame pre-serialized wire bytes (e.g. accelerator output)."""
        framed = encode_varint(len(payload)) + payload
        self._chunks.append(framed)
        self.message_count += 1
        return len(framed)

    def getvalue(self) -> bytes:
        return b"".join(self._chunks)

    @property
    def size_bytes(self) -> int:
        return sum(len(chunk) for chunk in self._chunks)
