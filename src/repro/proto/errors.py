"""Exception hierarchy for the proto2 implementation.

Two layers share this module.  The software library raises the plain
wire-format errors; the accelerator pipeline additionally reports
*structured* faults (:class:`AccelFault`) that carry the hardware fault
site, the cycle stamp at which the unit raised, and whether the fault is
transient -- the information the driver's recovery policy needs to pick
between retry and CPU fallback (see docs/FAULTS.md).
"""

from __future__ import annotations


class ProtoError(Exception):
    """Base class for all protobuf errors raised by this package."""


class SchemaError(ProtoError):
    """A .proto schema is malformed (parse error, duplicate field number,
    reserved field number, unknown type reference, ...)."""


class WireFormatError(ProtoError):
    """Serialized bytes violate the protobuf wire format.

    ``offset`` (byte position in the input, when known) and ``site`` (the
    decoding stage that detected the violation) make the error lossless
    when the accelerator wraps it into an :class:`AccelFault`.
    """

    def __init__(self, message: str, *, offset: int | None = None,
                 site: str | None = None):
        super().__init__(message)
        self.offset = offset
        self.site = site


class EncodeError(ProtoError):
    """A message cannot be serialized (e.g. missing required field or a
    value out of range for its declared type)."""


class DecodeError(WireFormatError):
    """Serialized bytes cannot be decoded into the target message type
    (truncated input, bad wire type for a field, malformed varint, ...)."""


class AccelFault(ProtoError):
    """A fault reported by an accelerator unit (Section 4.3's interrupt).

    Attributes:
        site: the named hardware site that faulted (``"memloader.bitflip"``,
            ``"tlb.fault"``, ...; see :class:`repro.faults.FaultSite`).
        cycle: the operation's cycle count when the unit raised.
        transient: True when a retry of the same operation may succeed
            (bus stalls, TLB faults, soft errors); False for faults that
            deterministically recur (malformed input, corrupted ADT image).
        injected: True when a :class:`repro.faults.FaultInjector` raised
            the fault; False for faults detected on real (malformed) input.
        offset: byte offset in the wire input, when the fault wraps a
            :class:`WireFormatError` that knew one.
    """

    def __init__(self, message: str, *, site: str | None = None,
                 cycle: float = 0.0, transient: bool = False,
                 injected: bool = False, offset: int | None = None):
        super().__init__(message)
        self.site = site
        self.cycle = cycle
        self.transient = transient
        self.injected = injected
        self.offset = offset

    @classmethod
    def wrap(cls, error: BaseException, *, site: str | None = None,
             cycle: float = 0.0, transient: bool = False,
             injected: bool = False) -> "AccelFault":
        """Wrap ``error`` losslessly: keeps its message and any
        offset/site attributes, adds the accelerator's cycle stamp."""
        return cls(str(error),
                   site=getattr(error, "site", None) or site,
                   cycle=cycle, transient=transient, injected=injected,
                   offset=getattr(error, "offset", None))


class WatchdogAbort(AccelFault):
    """The FSM watchdog killed an operation that exceeded its cycle
    budget (a hung field handler or serializer pipeline).

    ``cycle`` is the cycle count at which the watchdog fired -- the full
    budget for an injected hang (the FSM spun without progress until the
    timer expired), or the runaway operation's own count for an organic
    overrun.  Watchdog aborts are persistent: re-running the same
    operation on the same tile is expected to hang again, so recovery is
    CPU fallback or failover to another tile (docs/SERVING.md).
    """


class AccelDecodeFault(AccelFault, DecodeError):
    """Malformed wire bytes detected *inside* the accelerator pipeline.

    Doubly inherits :class:`DecodeError` so existing callers that catch
    decode errors keep working, while recovery code sees the structured
    :class:`AccelFault` face (site + cycle stamp).
    """

    def __init__(self, message: str, *, site: str | None = None,
                 cycle: float = 0.0, transient: bool = False,
                 injected: bool = False, offset: int | None = None):
        AccelFault.__init__(self, message, site=site, cycle=cycle,
                            transient=transient, injected=injected,
                            offset=offset)
