"""Exception hierarchy for the proto2 implementation."""


class ProtoError(Exception):
    """Base class for all protobuf errors raised by this package."""


class SchemaError(ProtoError):
    """A .proto schema is malformed (parse error, duplicate field number,
    reserved field number, unknown type reference, ...)."""


class WireFormatError(ProtoError):
    """Serialized bytes violate the protobuf wire format."""


class EncodeError(ProtoError):
    """A message cannot be serialized (e.g. missing required field or a
    value out of range for its declared type)."""


class DecodeError(WireFormatError):
    """Serialized bytes cannot be decoded into the target message type
    (truncated input, bad wire type for a field, malformed varint, ...)."""
