"""Schema-free wire inspection (``protoc --decode_raw``).

Decodes arbitrary protobuf wire bytes with no schema: every field comes
back as (field number, wire type, raw value), and length-delimited
values are speculatively re-parsed as nested messages when their bytes
happen to form valid wire format -- the same heuristic the real tooling
uses.  Invaluable when debugging accelerator output against unknown
buffers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.proto.errors import DecodeError
from repro.proto.types import WireType
from repro.proto.varint import decode_varint
from repro.proto.wire import decode_tag


@dataclass(frozen=True)
class RawField:
    """One decoded field occurrence."""

    number: int
    wire_type: WireType
    value: object                     # int | bytes | tuple[RawField, ...]

    @property
    def is_group(self) -> bool:
        return isinstance(self.value, tuple)


def decode_raw(data: bytes, max_depth: int = 8) -> tuple[RawField, ...]:
    """Decode wire bytes without a schema.

    Varint fields decode to ints; fixed32/64 to ints (little-endian);
    length-delimited values to bytes, or to a nested tuple of
    :class:`RawField` when the payload itself parses as wire format
    (nesting limited by ``max_depth``).
    """
    fields: list[RawField] = []
    offset = 0
    while offset < len(data):
        number, wire_type, consumed = decode_tag(data, offset)
        offset += consumed
        if wire_type is WireType.VARINT:
            value, consumed = decode_varint(data, offset)
            offset += consumed
        elif wire_type is WireType.FIXED64:
            if offset + 8 > len(data):
                raise DecodeError("truncated fixed64")
            value = int.from_bytes(data[offset:offset + 8], "little")
            offset += 8
        elif wire_type is WireType.FIXED32:
            if offset + 4 > len(data):
                raise DecodeError("truncated fixed32")
            value = int.from_bytes(data[offset:offset + 4], "little")
            offset += 4
        elif wire_type is WireType.LENGTH_DELIMITED:
            length, consumed = decode_varint(data, offset)
            offset += consumed
            if offset + length > len(data):
                raise DecodeError("truncated length-delimited value")
            payload = data[offset:offset + length]
            offset += length
            value = payload
            if payload and max_depth > 0:
                nested = _try_parse_fields_depth(payload, max_depth - 1)
                if nested is not None:
                    value = nested
        else:
            raise DecodeError(
                f"deprecated wire type {wire_type.name} at field {number}")
        fields.append(RawField(number, wire_type, value))
    return tuple(fields)


def _try_parse_fields_depth(data: bytes,
                            max_depth: int) -> tuple[RawField, ...] | None:
    try:
        return decode_raw(data, max_depth=max_depth)
    except DecodeError:
        return None


def format_raw(fields: tuple[RawField, ...], indent: int = 0) -> str:
    """Render decode_raw output like ``protoc --decode_raw``."""
    pad = "  " * indent
    lines: list[str] = []
    for raw in fields:
        if raw.is_group:
            lines.append(f"{pad}{raw.number} {{")
            lines.append(format_raw(raw.value, indent + 1))
            lines.append(f"{pad}}}")
        elif isinstance(raw.value, bytes):
            try:
                text = raw.value.decode("utf-8")
                printable = text.isprintable() or text == ""
            except UnicodeDecodeError:
                printable = False
            if printable:
                lines.append(f'{pad}{raw.number}: "{text}"')
            else:
                lines.append(f"{pad}{raw.number}: {raw.value.hex()}")
        else:
            lines.append(f"{pad}{raw.number}: {raw.value}")
    return "\n".join(lines)
