"""Protobuf text format (C++ ``DebugString`` / ``TextFormat::Parse``).

Emission via :func:`message_to_text`, parsing via
:func:`message_from_text` -- the human-readable sibling of the wire
format, used for golden files, configs, and debugging.
"""

from __future__ import annotations

import re

from repro.proto.descriptor import MessageDescriptor
from repro.proto.errors import DecodeError
from repro.proto.message import Message
from repro.proto.types import FieldType

_INDENT = "  "


def _format_scalar(fd, value) -> str:
    ft = fd.field_type
    if ft is FieldType.STRING:
        escaped = value.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    if ft is FieldType.BYTES:
        escaped = "".join(
            chr(b) if 32 <= b < 127 and b not in (34, 92)
            else f"\\{b:03o}"
            for b in value)
        return f'"{escaped}"'
    if ft is FieldType.BOOL:
        return "true" if value else "false"
    if ft is FieldType.ENUM and fd.enum_type is not None:
        for name, number in fd.enum_type.values.items():
            if number == value:
                return name
        return str(value)
    return repr(value) if isinstance(value, float) else str(value)


def _emit(message: Message, depth: int, lines: list[str]) -> None:
    pad = _INDENT * depth
    for fd in message.descriptor.fields:
        if not message.has(fd.name):
            continue
        values = message[fd.name] if fd.is_repeated else [message[fd.name]]
        for value in values:
            if fd.field_type is FieldType.MESSAGE:
                lines.append(f"{pad}{fd.name} {{")
                _emit(value, depth + 1, lines)
                lines.append(f"{pad}}}")
            else:
                lines.append(f"{pad}{fd.name}: {_format_scalar(fd, value)}")


def message_to_text(message: Message) -> str:
    """Render ``message`` in protobuf text format."""
    lines: list[str] = []
    _emit(message, 0, lines)
    return "\n".join(lines) + ("\n" if lines else "")


# -- parsing --------------------------------------------------------------------

_TEXT_TOKEN_RE = re.compile(
    r"""
    (?P<comment>\#[^\n]*)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<scalar>[-+]?[0-9][0-9a-fA-FxX.eE+-]*|[-+]?\.[0-9][0-9eE+-]*)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<punct>[{}:<>])
  | (?P<space>\s+)
  | (?P<bad>.)
    """,
    re.VERBOSE,
)


def _text_tokens(source: str) -> list[tuple[str, str]]:
    tokens = []
    for match in _TEXT_TOKEN_RE.finditer(source):
        kind = match.lastgroup
        if kind in ("space", "comment"):
            continue
        if kind == "bad":
            raise DecodeError(
                f"text format: unexpected character {match.group()!r}")
        tokens.append((kind, match.group()))
    return tokens


def _unescape(text: str) -> bytes:
    body = text[1:-1]
    out = bytearray()
    index = 0
    while index < len(body):
        char = body[index]
        if char != "\\":
            out += char.encode("utf-8")
            index += 1
            continue
        index += 1
        escape = body[index]
        simple = {"n": b"\n", "t": b"\t", "r": b"\r", '"': b'"',
                  "'": b"'", "\\": b"\\"}
        if escape in simple:
            out += simple[escape]
            index += 1
        elif escape.isdigit():
            octal = body[index:index + 3]
            out.append(int(octal, 8))
            index += 3
        elif escape == "x":
            out.append(int(body[index + 1:index + 3], 16))
            index += 3
        else:
            raise DecodeError(f"text format: bad escape \\{escape}")
    return bytes(out)


class _TextParser:
    def __init__(self, tokens: list[tuple[str, str]]):
        self._tokens = tokens
        self._pos = 0

    def _peek(self):
        return self._tokens[self._pos] if self._pos < len(self._tokens) \
            else (None, None)

    def _next(self):
        kind, text = self._peek()
        if kind is None:
            raise DecodeError("text format: unexpected end of input")
        self._pos += 1
        return kind, text

    def parse_fields(self, message: Message, terminator: str | None) -> None:
        while True:
            kind, text = self._peek()
            if kind is None:
                if terminator is None:
                    return
                raise DecodeError(
                    f"text format: missing closing {terminator!r}")
            if text == terminator:
                self._pos += 1
                return
            if kind != "ident":
                raise DecodeError(
                    f"text format: expected field name, got {text!r}")
            self._pos += 1
            self._parse_field(message, text)

    def _parse_field(self, message: Message, name: str) -> None:
        fd = message.descriptor.field_by_name(name)
        if fd is None:
            raise DecodeError(f"text format: unknown field {name!r}")
        kind, text = self._peek()
        if text in ("{", "<"):
            if fd.field_type is not FieldType.MESSAGE:
                raise DecodeError(
                    f"text format: {name} is not a message field")
            self._pos += 1
            closing = "}" if text == "{" else ">"
            assert fd.message_type is not None
            if fd.is_repeated:
                child = message[name].add()
            else:
                child = message.mutable(name)
            self.parse_fields(child, closing)
            return
        if text != ":":
            raise DecodeError(f"text format: expected ':' after {name}")
        self._pos += 1
        value = self._parse_scalar(fd)
        if fd.is_repeated:
            message[name].append(value)
            message._hasbits.add(fd.number)
        else:
            message[name] = value

    def _parse_scalar(self, fd):
        kind, text = self._next()
        ft = fd.field_type
        if ft is FieldType.STRING:
            if kind != "string":
                raise DecodeError(f"text format: {fd.name} needs a string")
            return _unescape(text).decode("utf-8")
        if ft is FieldType.BYTES:
            if kind != "string":
                raise DecodeError(f"text format: {fd.name} needs a string")
            return _unescape(text)
        if ft is FieldType.BOOL:
            if text in ("true", "1"):
                return True
            if text in ("false", "0"):
                return False
            raise DecodeError(f"text format: bad bool {text!r}")
        if ft is FieldType.ENUM:
            if kind == "ident":
                return text  # validated by the setter against the enum
            return int(text, 0)
        if ft in (FieldType.FLOAT, FieldType.DOUBLE):
            return float(text)
        if kind != "scalar":
            raise DecodeError(
                f"text format: {fd.name} needs a number, got {text!r}")
        return int(text, 0)


def message_from_text(descriptor: MessageDescriptor,
                      source: str) -> Message:
    """Parse protobuf text format into a new message of ``descriptor``."""
    message = descriptor.new_message()
    parser = _TextParser(_text_tokens(source))
    parser.parse_fields(message, terminator=None)
    return message
