"""Canonical protobuf <-> JSON mapping (protobuf's JSON spec).

Implements the upstream JSON mapping rules for the features this
library supports:

- field names render in lowerCamelCase (original names accepted on
  parse);
- ``int64``/``uint64``/``fixed64``/``sfixed64`` values render as JSON
  *strings* (they exceed IEEE-754 exact range);
- ``bytes`` render as standard base64;
- enums render by value name (numbers accepted on parse);
- ``map<K, V>`` fields render as JSON objects with string keys;
- repeated fields render as arrays, sub-messages as objects;
- non-finite floats render as the strings "NaN"/"Infinity"/"-Infinity".
"""

from __future__ import annotations

import base64
import json
import math

from repro.proto.descriptor import FieldDescriptor, MessageDescriptor
from repro.proto.errors import DecodeError
from repro.proto.message import Message
from repro.proto.types import FieldType

_STRING_INT_TYPES = frozenset({
    FieldType.INT64, FieldType.UINT64, FieldType.SINT64,
    FieldType.FIXED64, FieldType.SFIXED64,
})


def to_camel(name: str) -> str:
    """snake_case -> lowerCamelCase, the JSON field-name rule."""
    head, *rest = name.split("_")
    return head + "".join(part.capitalize() for part in rest)


def _scalar_to_json(fd: FieldDescriptor, value):
    ft = fd.field_type
    if ft in _STRING_INT_TYPES:
        return str(value)
    if ft is FieldType.BYTES:
        return base64.b64encode(value).decode("ascii")
    if ft is FieldType.ENUM:
        assert fd.enum_type is not None
        for name, number in fd.enum_type.values.items():
            if number == value:
                return name
        return value
    if ft in (FieldType.FLOAT, FieldType.DOUBLE):
        if math.isnan(value):
            return "NaN"
        if math.isinf(value):
            return "Infinity" if value > 0 else "-Infinity"
        return value
    return value


def _message_to_obj(message: Message) -> dict:
    obj: dict = {}
    for fd in message.descriptor.fields:
        if not message.has(fd.name):
            continue
        key = to_camel(fd.name)
        if fd.is_map:
            assert fd.message_type is not None
            value_fd = fd.message_type.field_by_name("value")
            assert value_fd is not None
            obj[key] = {
                str(entry["key"]): (
                    _message_to_obj(entry["value"])
                    if value_fd.field_type is FieldType.MESSAGE
                    else _scalar_to_json(value_fd, entry["value"]))
                for entry in message[fd.name]
            }
        elif fd.is_repeated:
            if fd.field_type is FieldType.MESSAGE:
                obj[key] = [_message_to_obj(item)
                            for item in message[fd.name]]
            else:
                obj[key] = [_scalar_to_json(fd, item)
                            for item in message[fd.name]]
        elif fd.field_type is FieldType.MESSAGE:
            obj[key] = _message_to_obj(message[fd.name])
        else:
            obj[key] = _scalar_to_json(fd, message[fd.name])
    return obj


def message_to_json(message: Message, indent: int | None = None) -> str:
    """Serialize ``message`` to canonical JSON text."""
    return json.dumps(_message_to_obj(message), indent=indent,
                      sort_keys=True)


# -- parsing --------------------------------------------------------------------


def _scalar_from_json(fd: FieldDescriptor, value):
    ft = fd.field_type
    if ft in _STRING_INT_TYPES:
        if isinstance(value, str):
            return int(value)
        if isinstance(value, int):
            return value
        raise DecodeError(f"{fd.name}: expected int64-as-string")
    if ft is FieldType.BYTES:
        if not isinstance(value, str):
            raise DecodeError(f"{fd.name}: expected base64 string")
        try:
            return base64.b64decode(value, validate=True)
        except Exception:
            raise DecodeError(f"{fd.name}: invalid base64") from None
    if ft in (FieldType.FLOAT, FieldType.DOUBLE):
        if value == "NaN":
            return math.nan
        if value == "Infinity":
            return math.inf
        if value == "-Infinity":
            return -math.inf
        if isinstance(value, (int, float)):
            return float(value)
        raise DecodeError(f"{fd.name}: expected a number")
    if ft is FieldType.ENUM:
        return value  # setter validates names and numbers
    if ft is FieldType.BOOL:
        if not isinstance(value, bool):
            raise DecodeError(f"{fd.name}: expected a JSON bool")
        return value
    if ft is FieldType.STRING:
        if not isinstance(value, str):
            raise DecodeError(f"{fd.name}: expected a JSON string")
        return value
    if isinstance(value, bool) or not isinstance(value, int):
        raise DecodeError(f"{fd.name}: expected a JSON integer")
    return value


def _map_key_from_json(fd: FieldDescriptor, key: str):
    if fd.field_type is FieldType.STRING:
        return key
    if fd.field_type is FieldType.BOOL:
        if key not in ("true", "false"):
            raise DecodeError(f"bad bool map key {key!r}")
        return key == "true"
    return int(key)


def _obj_to_message(descriptor: MessageDescriptor, obj: dict,
                    message: Message | None = None) -> Message:
    if not isinstance(obj, dict):
        raise DecodeError(f"{descriptor.name}: expected a JSON object")
    message = message or descriptor.new_message()
    by_json_name = {to_camel(fd.name): fd for fd in descriptor.fields}
    by_json_name.update({fd.name: fd for fd in descriptor.fields})
    for key, value in obj.items():
        fd = by_json_name.get(key)
        if fd is None:
            raise DecodeError(
                f"{descriptor.name}: unknown JSON field {key!r}")
        if value is None:
            continue  # JSON null means "absent"
        if fd.is_map:
            assert fd.message_type is not None
            key_fd = fd.message_type.field_by_name("key")
            value_fd = fd.message_type.field_by_name("value")
            assert key_fd is not None and value_fd is not None
            if not isinstance(value, dict):
                raise DecodeError(f"{fd.name}: map fields need objects")
            for raw_key, raw_value in value.items():
                if value_fd.field_type is FieldType.MESSAGE:
                    assert value_fd.message_type is not None
                    entry_value = _obj_to_message(value_fd.message_type,
                                                  raw_value)
                else:
                    entry_value = _scalar_from_json(value_fd, raw_value)
                message.map_set(fd.name,
                                _map_key_from_json(key_fd, raw_key),
                                entry_value)
        elif fd.is_repeated:
            if not isinstance(value, list):
                raise DecodeError(f"{fd.name}: repeated fields need arrays")
            for item in value:
                if fd.field_type is FieldType.MESSAGE:
                    assert fd.message_type is not None
                    message[fd.name]._items.append(
                        _obj_to_message(fd.message_type, item))
                    message._hasbits.add(fd.number)
                else:
                    message[fd.name].append(_scalar_from_json(fd, item))
                    message._hasbits.add(fd.number)
        elif fd.field_type is FieldType.MESSAGE:
            assert fd.message_type is not None
            child = _obj_to_message(fd.message_type, value)
            message[fd.name] = child
        else:
            message[fd.name] = _scalar_from_json(fd, value)
    return message


def message_from_json(descriptor: MessageDescriptor,
                      text: str) -> Message:
    """Parse canonical JSON text into a new message of ``descriptor``."""
    try:
        obj = json.loads(text)
    except json.JSONDecodeError as error:
        raise DecodeError(f"invalid JSON: {error}") from None
    return _obj_to_message(descriptor, obj)
