"""Protobuf field types, wire types, and the paper's performance classes.

Encodes Table 1 of the paper: protobuf field types grouped into
"performance-similar" classes (bytes-like, varint-like, float-like,
double-like, fixed32-like, fixed64-like), and the standard proto2
field-type -> wire-type mapping from Section 2.1.2.
"""

from __future__ import annotations

import enum


class FieldType(enum.Enum):
    """All proto2 scalar field types plus message and group."""

    DOUBLE = "double"
    FLOAT = "float"
    INT32 = "int32"
    INT64 = "int64"
    UINT32 = "uint32"
    UINT64 = "uint64"
    SINT32 = "sint32"
    SINT64 = "sint64"
    FIXED32 = "fixed32"
    FIXED64 = "fixed64"
    SFIXED32 = "sfixed32"
    SFIXED64 = "sfixed64"
    BOOL = "bool"
    ENUM = "enum"
    STRING = "string"
    BYTES = "bytes"
    MESSAGE = "message"
    GROUP = "group"  # deprecated; recognised but rejected by the parser


class WireType(enum.IntEnum):
    """The six protobuf wire types (two deprecated)."""

    VARINT = 0
    FIXED64 = 1
    LENGTH_DELIMITED = 2
    START_GROUP = 3  # deprecated
    END_GROUP = 4  # deprecated
    FIXED32 = 5


class Label(enum.Enum):
    """proto2 field qualifiers."""

    OPTIONAL = "optional"
    REQUIRED = "required"
    REPEATED = "repeated"


class PerformanceClass(enum.Enum):
    """Performance-similar type groups from Table 1 of the paper."""

    BYTES_LIKE = "bytes-like"
    VARINT_LIKE = "varint-like"
    FLOAT_LIKE = "float-like"
    DOUBLE_LIKE = "double-like"
    FIXED32_LIKE = "fixed32-like"
    FIXED64_LIKE = "fixed64-like"
    MESSAGE_LIKE = "message-like"  # sub-messages; not a Table 1 row


_WIRE_TYPES: dict[FieldType, WireType] = {
    FieldType.DOUBLE: WireType.FIXED64,
    FieldType.FLOAT: WireType.FIXED32,
    FieldType.INT32: WireType.VARINT,
    FieldType.INT64: WireType.VARINT,
    FieldType.UINT32: WireType.VARINT,
    FieldType.UINT64: WireType.VARINT,
    FieldType.SINT32: WireType.VARINT,
    FieldType.SINT64: WireType.VARINT,
    FieldType.FIXED32: WireType.FIXED32,
    FieldType.FIXED64: WireType.FIXED64,
    FieldType.SFIXED32: WireType.FIXED32,
    FieldType.SFIXED64: WireType.FIXED64,
    FieldType.BOOL: WireType.VARINT,
    FieldType.ENUM: WireType.VARINT,
    FieldType.STRING: WireType.LENGTH_DELIMITED,
    FieldType.BYTES: WireType.LENGTH_DELIMITED,
    FieldType.MESSAGE: WireType.LENGTH_DELIMITED,
}

_PERFORMANCE_CLASSES: dict[FieldType, PerformanceClass] = {
    FieldType.BYTES: PerformanceClass.BYTES_LIKE,
    FieldType.STRING: PerformanceClass.BYTES_LIKE,
    FieldType.INT32: PerformanceClass.VARINT_LIKE,
    FieldType.INT64: PerformanceClass.VARINT_LIKE,
    FieldType.UINT32: PerformanceClass.VARINT_LIKE,
    FieldType.UINT64: PerformanceClass.VARINT_LIKE,
    FieldType.SINT32: PerformanceClass.VARINT_LIKE,
    FieldType.SINT64: PerformanceClass.VARINT_LIKE,
    FieldType.ENUM: PerformanceClass.VARINT_LIKE,
    FieldType.BOOL: PerformanceClass.VARINT_LIKE,
    FieldType.FLOAT: PerformanceClass.FLOAT_LIKE,
    FieldType.DOUBLE: PerformanceClass.DOUBLE_LIKE,
    FieldType.FIXED32: PerformanceClass.FIXED32_LIKE,
    FieldType.SFIXED32: PerformanceClass.FIXED32_LIKE,
    FieldType.FIXED64: PerformanceClass.FIXED64_LIKE,
    FieldType.SFIXED64: PerformanceClass.FIXED64_LIKE,
    FieldType.MESSAGE: PerformanceClass.MESSAGE_LIKE,
}

# Field types whose wire representation is a zig-zag encoded varint.
ZIGZAG_TYPES = frozenset({FieldType.SINT32, FieldType.SINT64})

# Signed two's-complement varint types (negative values encode to 10 bytes).
SIGNED_VARINT_TYPES = frozenset({FieldType.INT32, FieldType.INT64})

# Types that may legally appear in a packed repeated field (scalar numerics).
PACKABLE_TYPES = frozenset(
    t
    for t, w in _WIRE_TYPES.items()
    if w in (WireType.VARINT, WireType.FIXED32, WireType.FIXED64)
)

# Fixed-width scalar sizes in bytes on the wire (and in the C++ object).
FIXED_WIDTH_BYTES: dict[FieldType, int] = {
    FieldType.DOUBLE: 8,
    FieldType.FIXED64: 8,
    FieldType.SFIXED64: 8,
    FieldType.FLOAT: 4,
    FieldType.FIXED32: 4,
    FieldType.SFIXED32: 4,
}

# Width of the C++ in-memory representation for scalar field types.
CPP_SCALAR_BYTES: dict[FieldType, int] = {
    FieldType.DOUBLE: 8,
    FieldType.FLOAT: 4,
    FieldType.INT32: 4,
    FieldType.INT64: 8,
    FieldType.UINT32: 4,
    FieldType.UINT64: 8,
    FieldType.SINT32: 4,
    FieldType.SINT64: 8,
    FieldType.FIXED32: 4,
    FieldType.FIXED64: 8,
    FieldType.SFIXED32: 4,
    FieldType.SFIXED64: 8,
    FieldType.BOOL: 1,
    FieldType.ENUM: 4,
}

# Numeric range limits for value validation, keyed by field type.
_INT_RANGES: dict[FieldType, tuple[int, int]] = {
    FieldType.INT32: (-(2**31), 2**31 - 1),
    FieldType.SINT32: (-(2**31), 2**31 - 1),
    FieldType.SFIXED32: (-(2**31), 2**31 - 1),
    FieldType.INT64: (-(2**63), 2**63 - 1),
    FieldType.SINT64: (-(2**63), 2**63 - 1),
    FieldType.SFIXED64: (-(2**63), 2**63 - 1),
    FieldType.UINT32: (0, 2**32 - 1),
    FieldType.FIXED32: (0, 2**32 - 1),
    FieldType.UINT64: (0, 2**64 - 1),
    FieldType.FIXED64: (0, 2**64 - 1),
    FieldType.ENUM: (-(2**31), 2**31 - 1),
}


def wire_type_for(field_type: FieldType) -> WireType:
    """Return the wire type a field of ``field_type`` uses on the wire."""
    try:
        return _WIRE_TYPES[field_type]
    except KeyError:
        raise ValueError(f"{field_type} has no wire representation") from None


def performance_class(field_type: FieldType) -> PerformanceClass:
    """Return the paper's Table 1 performance class for ``field_type``."""
    try:
        return _PERFORMANCE_CLASSES[field_type]
    except KeyError:
        raise ValueError(f"{field_type} has no performance class") from None


def int_range(field_type: FieldType) -> tuple[int, int]:
    """Inclusive (lo, hi) range of valid values for an integer field type."""
    return _INT_RANGES[field_type]


def is_integer_type(field_type: FieldType) -> bool:
    """True for all varint and fixed-width integer field types."""
    return field_type in _INT_RANGES or field_type is FieldType.BOOL


def is_packable(field_type: FieldType) -> bool:
    """True if a repeated field of this type may use the packed encoding."""
    return field_type in PACKABLE_TYPES
