"""A from-scratch proto2 implementation (Section 2 of the paper).

This subpackage is the software substrate: the schema language, the wire
format, dynamic in-memory messages, and the *software* serializer and
deserializer that the accelerator is benchmarked against.

Public API::

    from repro.proto import parse_schema, FieldType, Message

    schema = parse_schema('''
        message Point {
          required int32 x = 1;
          required int32 y = 2;
          optional string label = 3;
        }
    ''')
    point = schema['Point'].new_message()
    point['x'] = 3
    data = point.serialize()
    again = schema['Point'].parse(data)
"""

from repro.proto.errors import (
    ProtoError,
    SchemaError,
    WireFormatError,
    EncodeError,
    DecodeError,
)
from repro.proto.types import (
    FieldType,
    WireType,
    Label,
    PerformanceClass,
    performance_class,
    wire_type_for,
)
from repro.proto.varint import (
    encode_varint,
    decode_varint,
    varint_length,
    encode_zigzag,
    decode_zigzag,
    MAX_VARINT_LENGTH,
)
from repro.proto.descriptor import (
    FieldDescriptor,
    MessageDescriptor,
    EnumDescriptor,
    MethodDescriptor,
    Schema,
    ServiceDescriptor,
)
from repro.proto.message import Message
from repro.proto.parser import parse_schema
from repro.proto.encoder import serialize_message, byte_size
from repro.proto.decoder import parse_message
from repro.proto.arena import Arena
from repro.proto.writer import schema_to_proto
from repro.proto.compiler import compile_schema, generate_source
from repro.proto.text_format import message_from_text, message_to_text
from repro.proto.json_format import message_from_json, message_to_json
from repro.proto.stream import (
    DelimitedWriter,
    iter_delimited_payloads,
    read_delimited_stream,
    write_delimited,
    write_delimited_stream,
)
from repro.proto.rpc import RpcError, ServiceHandler, Stub
from repro.proto.inspect import RawField, decode_raw, format_raw
from repro.proto.descriptor_pb import (
    DESCRIPTOR_SCHEMA,
    schema_from_file_descriptor,
    schema_to_file_descriptor,
)

__all__ = [
    "ProtoError",
    "SchemaError",
    "WireFormatError",
    "EncodeError",
    "DecodeError",
    "FieldType",
    "WireType",
    "Label",
    "PerformanceClass",
    "performance_class",
    "wire_type_for",
    "encode_varint",
    "decode_varint",
    "varint_length",
    "encode_zigzag",
    "decode_zigzag",
    "MAX_VARINT_LENGTH",
    "FieldDescriptor",
    "MessageDescriptor",
    "EnumDescriptor",
    "Schema",
    "MethodDescriptor",
    "ServiceDescriptor",
    "Message",
    "parse_schema",
    "serialize_message",
    "byte_size",
    "parse_message",
    "Arena",
    "schema_to_proto",
    "compile_schema",
    "generate_source",
    "message_from_text",
    "message_to_text",
    "message_from_json",
    "message_to_json",
    "DelimitedWriter",
    "iter_delimited_payloads",
    "read_delimited_stream",
    "write_delimited",
    "write_delimited_stream",
    "RpcError",
    "ServiceHandler",
    "Stub",
    "RawField",
    "decode_raw",
    "format_raw",
    "DESCRIPTOR_SCHEMA",
    "schema_from_file_descriptor",
    "schema_to_file_descriptor",
]
