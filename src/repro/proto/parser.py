"""A parser for the proto2 schema language.

Supports the subset of the proto2 language the paper's workloads use:
``syntax``/``package`` declarations, (nested) ``message`` definitions,
``enum`` definitions, the ``optional``/``required``/``repeated`` labels,
all scalar types, sub-message fields, ``[packed = true]`` and
``[default = ...]`` options, ``reserved`` statements, and comments.

The entry point is :func:`parse_schema`, which returns a fully resolved
:class:`~repro.proto.descriptor.Schema`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.proto.descriptor import (
    EnumDescriptor,
    FieldDescriptor,
    MessageDescriptor,
    MethodDescriptor,
    Schema,
    ServiceDescriptor,
)
from repro.proto.errors import SchemaError
from repro.proto.types import FieldType, Label

_SCALAR_TYPES = {t.value: t for t in FieldType
                 if t not in (FieldType.MESSAGE, FieldType.GROUP,
                              FieldType.ENUM)}

_TOKEN_RE = re.compile(
    r"""
    (?P<comment>//[^\n]*|/\*.*?\*/)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<number>-?(?:0x[0-9a-fA-F]+|\d+(?:\.\d+)?(?:[eE][+-]?\d+)?|\.\d+|inf|nan))
  | (?P<ident>[A-Za-z_][A-Za-z0-9_.]*)
  | (?P<punct>[{}=\[\];,<>()])
  | (?P<space>\s+)
  | (?P<bad>.)
    """,
    re.VERBOSE | re.DOTALL,
)


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    line: int


def _tokenize(source: str) -> list[_Token]:
    tokens = []
    line = 1
    for match in _TOKEN_RE.finditer(source):
        kind = match.lastgroup
        text = match.group()
        if kind == "bad":
            raise SchemaError(f"line {line}: unexpected character {text!r}")
        if kind not in ("space", "comment"):
            tokens.append(_Token(kind, text, line))
        line += text.count("\n")
    return tokens


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, tokens: list[_Token]):
        self._tokens = tokens
        self._pos = 0

    # -- token plumbing ---------------------------------------------------

    def _peek(self) -> _Token | None:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise SchemaError("unexpected end of input")
        self._pos += 1
        return token

    def _expect(self, text: str) -> _Token:
        token = self._next()
        if token.text != text:
            raise SchemaError(
                f"line {token.line}: expected {text!r}, got {token.text!r}")
        return token

    def _expect_kind(self, kind: str) -> _Token:
        token = self._next()
        if token.kind != kind:
            raise SchemaError(
                f"line {token.line}: expected {kind}, got {token.text!r}")
        return token

    def _accept(self, text: str) -> bool:
        token = self._peek()
        if token is not None and token.text == text:
            self._pos += 1
            return True
        return False

    # -- grammar ----------------------------------------------------------

    def parse_file(self) -> Schema:
        schema = Schema()
        # Collect raw message bodies first; resolve type names afterwards so
        # that forward and recursive references work.
        raw_messages: list[tuple[str, list[dict]]] = []
        enums: dict[str, EnumDescriptor] = {}
        services: list[ServiceDescriptor] = []
        while self._peek() is not None:
            token = self._peek()
            assert token is not None
            if token.text == "syntax":
                self._next()
                self._expect("=")
                value = self._expect_kind("string").text.strip('"')
                if value not in ("proto2", "proto3"):
                    raise SchemaError(f"unknown syntax {value!r}")
                schema.syntax = value
                self._expect(";")
            elif token.text == "package":
                self._next()
                schema.package = self._expect_kind("ident").text
                self._expect(";")
            elif token.text == "import":
                # Imports are accepted and ignored; all workloads in this
                # repository are single-file.
                self._next()
                self._accept("public")
                self._expect_kind("string")
                self._expect(";")
            elif token.text == "option":
                self._skip_option()
            elif token.text == "message":
                raw_messages.extend(self._parse_message(prefix=""))
            elif token.text == "enum":
                enum = self._parse_enum(prefix="")
                enums[enum.name] = enum
            elif token.text == "service":
                services.append(self._parse_service())
            elif token.text == ";":
                self._next()
            else:
                raise SchemaError(
                    f"line {token.line}: unexpected {token.text!r}")
        for enum in enums.values():
            schema.add_enum(enum)
        self._build_messages(schema, raw_messages, enums)
        for service in services:
            schema.add_service(service)
        schema.resolve()
        return schema

    def _parse_service(self) -> ServiceDescriptor:
        """``service Name { rpc M (In) returns (Out); ... }``"""
        self._expect("service")
        name = self._expect_kind("ident").text
        self._expect("{")
        methods: list[MethodDescriptor] = []
        while not self._accept("}"):
            token = self._peek()
            if token is None:
                raise SchemaError(f"service {name}: missing closing brace")
            if token.text == "option":
                self._skip_option()
                continue
            if token.text == ";":
                self._next()
                continue
            self._expect("rpc")
            method_name = self._expect_kind("ident").text
            self._expect("(")
            client_streaming = self._accept("stream")
            input_type = self._expect_kind("ident").text
            self._expect(")")
            self._expect("returns")
            self._expect("(")
            server_streaming = self._accept("stream")
            output_type = self._expect_kind("ident").text
            self._expect(")")
            if self._accept("{"):
                # Method options block: skip to the matching brace.
                depth = 1
                while depth:
                    text = self._next().text
                    depth += text == "{"
                    depth -= text == "}"
            else:
                self._expect(";")
            methods.append(MethodDescriptor(
                name=method_name, input_type=input_type,
                output_type=output_type,
                client_streaming=client_streaming,
                server_streaming=server_streaming))
        return ServiceDescriptor(name, methods)

    def _skip_option(self) -> None:
        self._expect("option")
        while self._next().text != ";":
            pass

    def _parse_enum(self, prefix: str) -> EnumDescriptor:
        self._expect("enum")
        name = prefix + self._expect_kind("ident").text
        self._expect("{")
        values: dict[str, int] = {}
        while not self._accept("}"):
            token = self._next()
            if token.text == "option":
                self._pos -= 1
                self._skip_option()
                continue
            if token.kind != "ident":
                raise SchemaError(
                    f"line {token.line}: bad enum entry {token.text!r}")
            self._expect("=")
            number = int(self._expect_kind("number").text, 0)
            self._expect(";")
            if token.text in values:
                raise SchemaError(f"enum {name}: duplicate value {token.text}")
            values[token.text] = number
        return EnumDescriptor(name=name, values=values)

    def _parse_message(self, prefix: str) -> list[tuple[str, list[dict]]]:
        """Parse one message and its nested types.

        Returns a flat list of (qualified_name, raw_fields) pairs; nested
        messages are qualified as ``Outer.Inner``.
        """
        self._expect("message")
        name = prefix + self._expect_kind("ident").text
        self._expect("{")
        fields: list[dict] = []
        collected: list[tuple[str, list[dict]]] = []
        nested_enums: list[EnumDescriptor] = []
        while not self._accept("}"):
            token = self._peek()
            if token is None:
                raise SchemaError(f"message {name}: missing closing brace")
            if token.text == "message":
                collected.extend(self._parse_message(prefix=name + "."))
            elif token.text == "enum":
                nested_enums.append(self._parse_enum(prefix=name + "."))
            elif token.text == "oneof":
                fields.extend(self._parse_oneof())
            elif token.text == "option":
                self._skip_option()
            elif token.text == "reserved":
                self._skip_reserved()
            elif token.text == ";":
                self._next()
            else:
                fields.append(self._parse_field())
        collected.insert(0, (name, fields))
        # Nested enums piggy-back on the raw field dicts for later lookup.
        for enum in nested_enums:
            collected.append((f"enum:{enum.name}", [{"enum": enum}]))
        return collected

    def _skip_reserved(self) -> None:
        self._expect("reserved")
        while self._next().text != ";":
            pass

    def _parse_field(self) -> dict:
        token = self._next()
        label = Label.OPTIONAL
        if token.text in ("optional", "required", "repeated"):
            label = Label(token.text)
            token = self._next()
        if token.kind != "ident":
            raise SchemaError(
                f"line {token.line}: expected field type, got {token.text!r}")
        if token.text == "map" and self._accept("<"):
            return self._parse_map_field(token.line, label)
        type_text = token.text
        name = self._expect_kind("ident").text
        self._expect("=")
        number = int(self._expect_kind("number").text, 0)
        options = {}
        if self._accept("["):
            while True:
                key = self._expect_kind("ident").text
                self._expect("=")
                value_token = self._next()
                options[key] = value_token.text
                if self._accept("]"):
                    break
                self._expect(",")
        self._expect(";")
        return {
            "label": label,
            "type_text": type_text,
            "name": name,
            "number": number,
            "options": options,
        }

    def _parse_oneof(self) -> list[dict]:
        """``oneof group { type field = N; ... }`` -- members are singular
        fields tagged with their group; labels are not permitted."""
        self._expect("oneof")
        group = self._expect_kind("ident").text
        self._expect("{")
        members: list[dict] = []
        while not self._accept("}"):
            token = self._peek()
            if token is None:
                raise SchemaError(f"oneof {group}: missing closing brace")
            if token.text in ("optional", "required", "repeated"):
                raise SchemaError(
                    f"oneof {group}: members take no field label")
            raw = self._parse_field()
            raw["oneof"] = group
            members.append(raw)
        if not members:
            raise SchemaError(f"oneof {group} has no members")
        return members

    _MAP_KEY_TYPES = frozenset({
        "int32", "int64", "uint32", "uint64", "sint32", "sint64",
        "fixed32", "fixed64", "sfixed32", "sfixed64", "bool", "string",
    })

    def _parse_map_field(self, line: int, label: Label) -> dict:
        """``map<K, V> name = N;`` -- wire-format sugar for a repeated
        synthesized entry message with fields key=1, value=2."""
        if label is not Label.OPTIONAL:
            raise SchemaError(f"line {line}: map fields take no label")
        key_text = self._expect_kind("ident").text
        if key_text not in self._MAP_KEY_TYPES:
            raise SchemaError(
                f"line {line}: invalid map key type {key_text!r}")
        self._expect(",")
        value_text = self._expect_kind("ident").text
        if value_text == "map":
            raise SchemaError(f"line {line}: map values cannot be maps")
        self._expect(">")
        name = self._expect_kind("ident").text
        self._expect("=")
        number = int(self._expect_kind("number").text, 0)
        self._expect(";")
        return {
            "label": Label.REPEATED,
            "type_text": None,
            "map": (key_text, value_text),
            "name": name,
            "number": number,
            "options": {},
        }

    # -- descriptor construction ------------------------------------------

    def _build_messages(
        self,
        schema: Schema,
        raw_messages: list[tuple[str, list[dict]]],
        top_enums: dict[str, EnumDescriptor],
    ) -> None:
        # Synthesize map entry types: each ``map<K, V> f = N`` becomes a
        # hidden nested message ``Parent.FEntry { K key = 1; V value = 2 }``
        # and the field itself a repeated reference to it.
        entry_names: set[str] = set()
        synthesized: list[tuple[str, list[dict]]] = []
        for qname, raw_fields in raw_messages:
            if qname.startswith("enum:"):
                continue
            for raw in raw_fields:
                if "map" not in raw:
                    continue
                key_text, value_text = raw.pop("map")
                entry_name = (f"{qname}."
                              f"{_camel_case(raw['name'])}Entry")
                entry_names.add(entry_name)
                synthesized.append((entry_name, [
                    {"label": Label.OPTIONAL, "type_text": key_text,
                     "name": "key", "number": 1, "options": {}},
                    {"label": Label.OPTIONAL, "type_text": value_text,
                     "name": "value", "number": 2, "options": {}},
                ]))
                raw["type_text"] = entry_name
        raw_messages = raw_messages + synthesized
        message_names = {qname for qname, _ in raw_messages
                         if not qname.startswith("enum:")}
        enums = dict(top_enums)
        for qname, fields in raw_messages:
            if qname.startswith("enum:"):
                enum = fields[0]["enum"]
                enums[enum.name] = enum
                schema.add_enum(enum)
        for qname, raw_fields in raw_messages:
            if qname.startswith("enum:"):
                continue
            descriptors = [
                self._build_field(raw, qname, message_names, enums)
                for raw in raw_fields
            ]
            if schema.syntax == "proto3":
                for fd in descriptors:
                    if fd.field_type is FieldType.STRING:
                        fd.validate_utf8 = True
            schema.add_message(MessageDescriptor(
                qname, descriptors, full_name=qname,
                is_map_entry=qname in entry_names))

    def _build_field(self, raw: dict, scope: str,
                     message_names: set[str],
                     enums: dict[str, EnumDescriptor]) -> FieldDescriptor:
        type_text = raw["type_text"]
        options = raw["options"]
        packed = options.get("packed", "false") == "true"
        default = _parse_default(options.get("default"))
        oneof = raw.get("oneof")
        if type_text in _SCALAR_TYPES:
            field_type = _SCALAR_TYPES[type_text]
            return FieldDescriptor(
                name=raw["name"], number=raw["number"],
                field_type=field_type, label=raw["label"],
                packed=packed, oneof_group=oneof,
                default=_coerce_default(default, field_type))
        resolved = _resolve_type_name(type_text, scope, message_names,
                                      set(enums))
        if resolved is None:
            raise SchemaError(
                f"{scope}.{raw['name']}: unknown type {type_text!r}")
        if resolved in enums:
            enum = enums[resolved]
            enum_default = default
            if isinstance(default, str):
                if default not in enum.values:
                    raise SchemaError(
                        f"{scope}.{raw['name']}: unknown enum default "
                        f"{default!r}")
                enum_default = enum.values[default]
            return FieldDescriptor(
                name=raw["name"], number=raw["number"],
                field_type=FieldType.ENUM, label=raw["label"],
                enum_type=enum, packed=packed, default=enum_default,
                oneof_group=oneof)
        return FieldDescriptor(
            name=raw["name"], number=raw["number"],
            field_type=FieldType.MESSAGE, label=raw["label"],
            type_name=resolved, oneof_group=oneof)


def _resolve_type_name(type_text: str, scope: str,
                       message_names: set[str],
                       enum_names: set[str]) -> str | None:
    """Resolve a type reference the way protoc does: innermost scope out."""
    known = message_names | enum_names
    if type_text.startswith("."):
        stripped = type_text[1:]
        return stripped if stripped in known else None
    parts = scope.split(".")
    for depth in range(len(parts), -1, -1):
        candidate = ".".join(parts[:depth] + [type_text])
        if candidate in known:
            return candidate
    return type_text if type_text in known else None


def _camel_case(name: str) -> str:
    """protoc's map-entry naming: field_name -> FieldNameEntry prefix."""
    return "".join(part.capitalize() for part in name.split("_"))


def _parse_default(text: str | None):
    if text is None:
        return None
    if text.startswith('"'):
        return text.strip('"')
    if text == "true":
        return True
    if text == "false":
        return False
    try:
        return int(text, 0)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text  # enum value name; resolved by caller


def _coerce_default(default, field_type: FieldType):
    if default is None:
        return None
    if field_type in (FieldType.FLOAT, FieldType.DOUBLE):
        return float(default)
    if field_type is FieldType.BYTES and isinstance(default, str):
        return default.encode("utf-8")
    return default


def parse_schema(source: str) -> Schema:
    """Parse proto2 source text into a resolved :class:`Schema`."""
    return _Parser(_tokenize(source)).parse_file()
