"""Wire-format primitives: tags (keys) and unknown-field skipping.

A field's *key* on the wire is ``(field_number << 3) | wire_type`` encoded
as a varint (Section 2.1.2).
"""

from __future__ import annotations

from repro.proto.errors import DecodeError
from repro.proto.types import WireType
from repro.proto.varint import decode_varint, encode_varint, varint_length

_WIRE_TYPE_BITS = 3
_WIRE_TYPE_MASK = (1 << _WIRE_TYPE_BITS) - 1


def make_tag(field_number: int, wire_type: WireType) -> int:
    """Combine a field number and wire type into the numeric tag."""
    if field_number < 1:
        raise ValueError(f"invalid field number {field_number}")
    return (field_number << _WIRE_TYPE_BITS) | int(wire_type)


def split_tag(tag: int) -> tuple[int, WireType]:
    """Split a numeric tag into (field_number, wire_type)."""
    wire_value = tag & _WIRE_TYPE_MASK
    try:
        wire_type = WireType(wire_value)
    except ValueError:
        raise DecodeError(f"invalid wire type {wire_value}") from None
    field_number = tag >> _WIRE_TYPE_BITS
    if field_number < 1:
        raise DecodeError(f"invalid field number {field_number}")
    return field_number, wire_type


def encode_tag(field_number: int, wire_type: WireType) -> bytes:
    """Encode a key as wire bytes."""
    return encode_varint(make_tag(field_number, wire_type))


def decode_tag(data: bytes, offset: int) -> tuple[int, WireType, int]:
    """Decode a key; returns (field_number, wire_type, bytes_consumed)."""
    tag, consumed = decode_varint(data, offset)
    field_number, wire_type = split_tag(tag)
    return field_number, wire_type, consumed


def tag_length(field_number: int, wire_type: WireType) -> int:
    """Encoded length of a key in bytes."""
    return varint_length(make_tag(field_number, wire_type))


def skip_field(data: bytes, offset: int, wire_type: WireType) -> int:
    """Skip one unknown field's value; returns the new offset.

    proto2 requires parsers to skip fields they do not know about (schema
    evolution, Section 2.1.1).  Deprecated group wire types are rejected.
    """
    if wire_type is WireType.VARINT:
        _, consumed = decode_varint(data, offset)
        return offset + consumed
    if wire_type is WireType.FIXED64:
        if offset + 8 > len(data):
            raise DecodeError("truncated fixed64 value")
        return offset + 8
    if wire_type is WireType.FIXED32:
        if offset + 4 > len(data):
            raise DecodeError("truncated fixed32 value")
        return offset + 4
    if wire_type is WireType.LENGTH_DELIMITED:
        length, consumed = decode_varint(data, offset)
        end = offset + consumed + length
        if end > len(data):
            raise DecodeError("truncated length-delimited value")
        return end
    raise DecodeError(f"cannot skip deprecated wire type {wire_type.name}")
