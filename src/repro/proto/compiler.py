"""protoc-style code generation: schemas -> typed Python classes.

The real protoc emits per-type C++ classes with accessors (Section
2.1.3); this module is its Python analogue.  :func:`generate_source`
renders readable Python source defining one wrapper class per message
type -- typed properties, ``has_*``/``clear_*`` methods, ``mutable_*``
for sub-messages, ``add_*`` for repeated sub-messages, and the standard
serialize/parse/clear/copy/merge entry points -- and
:func:`compile_schema` executes it into an importable module object.

The generated classes wrap the dynamic :class:`~repro.proto.message.
Message` (the way generated C++ wraps the runtime's internals), so wire
behaviour is identical to the dynamic API; what generation adds is the
ergonomic, typo-proof surface user code compiles against.
"""

from __future__ import annotations

import keyword
import types as types_module

from repro.proto.descriptor import Schema
from repro.proto.types import FieldType, Label

_HEADER = '''"""Generated protobuf classes.  DO NOT EDIT.

Produced by repro.proto.compiler from a proto2 schema; the classes wrap
dynamic messages and are wire-compatible with the runtime API.
"""

from repro.proto.message import Message


def _wrap(value, classes=None):
    """Wrap a dynamic Message in its generated class, if it has one."""
    if isinstance(value, Message):
        cls = _CLASSES.get(value.descriptor.full_name)
        if cls is not None:
            return cls(_wrapped=value)
    return value


_CLASSES = {}
'''

_CLASS_TEMPLATE = '''

class {class_name}:
    """Generated wrapper for message type ``{full_name}``."""

    def __init__(self, _wrapped=None):
        self._msg = (_wrapped if _wrapped is not None
                     else _SCHEMA[{full_name!r}].new_message())

    @classmethod
    def descriptor(cls):
        return _SCHEMA[{full_name!r}]

    @classmethod
    def parse(cls, data):
        """Deserialize wire bytes into a new {class_name}."""
        return cls(_wrapped=_SCHEMA[{full_name!r}].parse(data))

    def serialize(self):
        """Serialize to protobuf wire bytes."""
        return self._msg.serialize()

    def byte_size(self):
        return self._msg.byte_size()

    def clear(self):
        self._msg.clear()

    def copy(self):
        return type(self)(_wrapped=self._msg.copy())

    def merge_from(self, other):
        self._msg.merge_from(other._msg)

    def which_oneof(self, group):
        """Name of the set member of a oneof group, or None."""
        return self._msg.which_oneof(group)

    def unwrap(self):
        """The underlying dynamic Message (for runtime interop)."""
        return self._msg

    def __eq__(self, other):
        if isinstance(other, type(self)):
            return self._msg == other._msg
        if isinstance(other, Message):
            return self._msg == other
        return NotImplemented

    def __repr__(self):
        return f"{class_name}({{self._msg!r}})"
'''


def _class_name(full_name: str) -> str:
    name = full_name.replace(".", "_")
    if keyword.iskeyword(name):
        name += "_"
    return name


def _safe(name: str) -> str:
    return name + "_" if keyword.iskeyword(name) else name


def _scalar_property(fd) -> str:
    name = _safe(fd.name)
    return f'''
    @property
    def {name}(self):
        """{fd.label.value} {fd.field_type.value} = {fd.number}"""
        return self._msg[{fd.name!r}]

    @{name}.setter
    def {name}(self, value):
        self._msg[{fd.name!r}] = value

    def has_{name}(self):
        return self._msg.has({fd.name!r})

    def clear_{name}(self):
        self._msg.clear_field({fd.name!r})
'''


def _message_property(fd) -> str:
    name = _safe(fd.name)
    assert fd.message_type is not None
    child_class = _class_name(fd.message_type.full_name)
    if fd.label is Label.REPEATED:
        return f'''
    @property
    def {name}(self):
        """repeated {fd.message_type.full_name} = {fd.number}"""
        return [_wrap(item) for item in self._msg[{fd.name!r}]]

    def add_{name}(self):
        """Append and return a new {child_class} element."""
        return _wrap(self._msg[{fd.name!r}].add())

    def has_{name}(self):
        return self._msg.has({fd.name!r})

    def clear_{name}(self):
        self._msg.clear_field({fd.name!r})
'''
    return f'''
    @property
    def {name}(self):
        """optional {fd.message_type.full_name} = {fd.number}"""
        return _wrap(self._msg[{fd.name!r}])

    def mutable_{name}(self):
        """Get-or-create the {child_class} sub-message."""
        return _wrap(self._msg.mutable({fd.name!r}))

    def has_{name}(self):
        return self._msg.has({fd.name!r})

    def clear_{name}(self):
        self._msg.clear_field({fd.name!r})
'''


def _repeated_scalar_property(fd) -> str:
    name = _safe(fd.name)
    return f'''
    @property
    def {name}(self):
        """repeated {fd.field_type.value} = {fd.number}"""
        return self._msg[{fd.name!r}]

    @{name}.setter
    def {name}(self, values):
        self._msg[{fd.name!r}] = list(values)

    def add_{name}(self, value):
        self._msg[{fd.name!r}].append(value)

    def has_{name}(self):
        return self._msg.has({fd.name!r})

    def clear_{name}(self):
        self._msg.clear_field({fd.name!r})
'''


def _map_property(fd) -> str:
    name = _safe(fd.name)
    assert fd.message_type is not None
    key_fd = fd.message_type.field_by_name("key")
    value_fd = fd.message_type.field_by_name("value")
    assert key_fd is not None and value_fd is not None
    signature = (f"map<{key_fd.field_type.value}, "
                 f"{value_fd.field_type.value}> = {fd.number}")
    return f'''
    @property
    def {name}(self):
        """{signature}"""
        return self._msg.map_as_dict({fd.name!r})

    def set_{name}(self, key, value):
        self._msg.map_set({fd.name!r}, key, value)

    def get_{name}(self, key, default=None):
        return self._msg.map_get({fd.name!r}, key, default)

    def remove_{name}(self, key):
        return self._msg.map_remove({fd.name!r}, key)

    def clear_{name}(self):
        self._msg.clear_field({fd.name!r})
'''


def generate_source(schema: Schema, module_name: str = "generated") -> str:
    """Render Python source for every message type in ``schema``."""
    parts = [_HEADER]
    for descriptor in schema.messages():
        if descriptor.is_map_entry:
            continue  # hidden implementation detail of map fields
        class_name = _class_name(descriptor.full_name)
        parts.append(_CLASS_TEMPLATE.format(
            class_name=class_name, full_name=descriptor.full_name))
        for fd in descriptor.fields:
            if fd.is_map:
                parts.append(_map_property(fd))
            elif fd.field_type is FieldType.MESSAGE:
                parts.append(_message_property(fd))
            elif fd.label is Label.REPEATED:
                parts.append(_repeated_scalar_property(fd))
            else:
                parts.append(_scalar_property(fd))
        parts.append(
            f"\n_CLASSES[{descriptor.full_name!r}] = {class_name}\n")
    for enum in schema.enums():
        enum_class = _class_name(enum.name)
        parts.append(f"\n\nclass {enum_class}:\n"
                     f'    """Generated enum ``{enum.name}``."""\n')
        for value_name, number in enum.values.items():
            parts.append(f"    {_safe(value_name)} = {number}\n")
    for service in schema.services():
        parts.append(_service_stub(service))
    return "".join(parts)


def _service_stub(service) -> str:
    """Render a typed client stub class for one service.

    The stub wraps :class:`repro.proto.rpc.Stub`: each method takes the
    generated request class and returns the generated response class.
    """
    lines = [f'''

class {service.name}Stub:
    """Generated client stub for service ``{service.name}``."""

    def __init__(self, transport, accelerator=None):
        from repro.proto.rpc import Stub
        self._stub = Stub(_SCHEMA.service({service.name!r}), transport,
                          accelerator=accelerator)
''']
    for method in service.methods:
        name = _safe(method.name)
        response_class = _class_name(method.output_type)
        lines.append(f'''
    def {name}(self, request):
        """rpc {method.name} ({method.input_type}) returns
        ({method.output_type})"""
        response = self._stub.call({method.name!r}, request.unwrap()
                                   if hasattr(request, "unwrap")
                                   else request)
        return {response_class}(_wrapped=response)
''')
    return "".join(lines)


def compile_schema(schema: Schema,
                   module_name: str = "generated") -> types_module.ModuleType:
    """Generate and execute the wrapper classes; returns a module object.

    The schema object itself is injected as ``_SCHEMA`` so the generated
    code shares descriptors (and therefore layouts/ADTs) with the
    runtime.
    """
    source = generate_source(schema, module_name)
    module = types_module.ModuleType(module_name)
    module.__dict__["_SCHEMA"] = schema
    exec(compile(source, f"<{module_name}>", "exec"), module.__dict__)
    module.__dict__["__source__"] = source
    # Pre-compile the specialized parse/serialize kernels for every type
    # so the generated classes hit warm kernels on first use (protoc
    # emits its fast parsers at compile time, not first call).
    from repro.proto.specialized import specialization_enabled, warm
    if specialization_enabled():
        warm(schema)
    return module
