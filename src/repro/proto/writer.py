"""Emit a Schema back as .proto source text.

Used by the HyperProtoBench generator to materialise its synthetic
schemas as real .proto files (as the paper's generator does), and by the
test suite to check parser round trips.
"""

from __future__ import annotations

from repro.proto.descriptor import (
    EnumDescriptor,
    FieldDescriptor,
    MessageDescriptor,
    Schema,
)
from repro.proto.types import FieldType


def _field_line(fd: FieldDescriptor, scope: str) -> str:
    if fd.is_map:
        assert fd.message_type is not None
        key_fd = fd.message_type.field_by_name("key")
        value_fd = fd.message_type.field_by_name("value")
        assert key_fd is not None and value_fd is not None
        if value_fd.field_type is FieldType.MESSAGE:
            value_text = value_fd.type_name
        elif value_fd.field_type is FieldType.ENUM:
            assert value_fd.enum_type is not None
            value_text = value_fd.enum_type.name
        else:
            value_text = value_fd.field_type.value
        return (f"map<{key_fd.field_type.value}, {value_text}> "
                f"{fd.name} = {fd.number};")
    if fd.field_type is FieldType.MESSAGE:
        type_text = fd.type_name
    elif fd.field_type is FieldType.ENUM:
        assert fd.enum_type is not None
        type_text = fd.enum_type.name
    else:
        type_text = fd.field_type.value
    assert type_text is not None
    # Use a fully qualified (leading-dot) reference when the target lives
    # outside this message's scope chain, so round trips are unambiguous.
    if "." in type_text and not type_text.startswith(scope + "."):
        type_text = "." + type_text
    options = []
    if fd.packed:
        options.append("packed = true")
    if fd.default is not None:
        options.append(f"default = {_default_text(fd)}")
    suffix = f" [{', '.join(options)}]" if options else ""
    return (f"{fd.label.value} {type_text} {fd.name} = {fd.number}"
            f"{suffix};")


def _default_text(fd: FieldDescriptor) -> str:
    value = fd.default
    if fd.field_type is FieldType.ENUM:
        assert fd.enum_type is not None
        for name, number in fd.enum_type.values.items():
            if number == value:
                return name
        return str(value)
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, str):
        return f'"{value}"'
    if isinstance(value, bytes):
        return f'"{value.decode("latin-1")}"'
    return str(value)


def _enum_block(enum: EnumDescriptor, indent: str) -> list[str]:
    short = enum.name.rsplit(".", 1)[-1]
    lines = [f"{indent}enum {short} {{"]
    for name, number in enum.values.items():
        lines.append(f"{indent}  {name} = {number};")
    lines.append(f"{indent}}}")
    return lines


def schema_to_proto(schema: Schema) -> str:
    """Render ``schema`` as proto2 source text.

    Nested message types (``Outer.Inner``) are emitted nested inside their
    parents; top-level types at file scope.
    """
    lines = [f'syntax = "{schema.syntax}";', ""]
    if schema.package:
        lines.append(f"package {schema.package};")
        lines.append("")
    children: dict[str, list[MessageDescriptor]] = {}
    top_level: list[MessageDescriptor] = []
    for descriptor in schema.messages():
        if descriptor.is_map_entry:
            continue  # re-synthesized from the map<...> field line
        if "." in descriptor.name:
            parent = descriptor.name.rsplit(".", 1)[0]
            children.setdefault(parent, []).append(descriptor)
        else:
            top_level.append(descriptor)
    top_enums = [e for e in schema.enums() if "." not in e.name]
    nested_enums: dict[str, list[EnumDescriptor]] = {}
    for enum in schema.enums():
        if "." in enum.name:
            parent = enum.name.rsplit(".", 1)[0]
            nested_enums.setdefault(parent, []).append(enum)
    for enum in top_enums:
        lines.extend(_enum_block(enum, ""))
        lines.append("")

    def emit_message(descriptor: MessageDescriptor, depth: int) -> None:
        indent = "  " * depth
        short = descriptor.name.rsplit(".", 1)[-1]
        lines.append(f"{indent}message {short} {{")
        for enum in nested_enums.get(descriptor.name, ()):
            lines.extend(_enum_block(enum, indent + "  "))
        for child in children.get(descriptor.name, ()):
            emit_message(child, depth + 1)
        emitted_groups: set[str] = set()
        for fd in descriptor.fields:
            if fd.oneof_group is not None:
                if fd.oneof_group in emitted_groups:
                    continue
                emitted_groups.add(fd.oneof_group)
                lines.append(f"{indent}  oneof {fd.oneof_group} {{")
                for number in descriptor.oneof_groups[fd.oneof_group]:
                    member = descriptor.field_by_number(number)
                    assert member is not None
                    member_line = _field_line(member, descriptor.name)
                    # oneof members take no label.
                    member_line = member_line.removeprefix("optional ")
                    lines.append(f"{indent}    {member_line}")
                lines.append(f"{indent}  }}")
                continue
            lines.append(f"{indent}  {_field_line(fd, descriptor.name)}")
        lines.append(f"{indent}}}")

    for descriptor in top_level:
        emit_message(descriptor, 0)
        lines.append("")
    for service in schema.services():
        lines.append(f"service {service.name} {{")
        for method in service.methods:
            input_text = ("stream " if method.client_streaming
                          else "") + method.input_type
            output_text = ("stream " if method.server_streaming
                           else "") + method.output_type
            lines.append(f"  rpc {method.name} ({input_text}) "
                         f"returns ({output_text});")
        lines.append("}")
        lines.append("")
    return "\n".join(lines)
