#!/usr/bin/env python3
"""Quickstart: define a schema, build a message, and offload ser/deser.

Walks the full API surface in one page:

1. parse a .proto schema;
2. populate a message and serialize/deserialize in software;
3. bring up the accelerated SoC, register ADTs, and run the same
   operations on the accelerator -- checking wire compatibility and
   comparing modeled cycles against the BOOM and Xeon baselines.

Run:  python examples/quickstart.py
"""

from repro.accel.driver import ProtoAccelerator
from repro.cpu.boom import boom_cpu
from repro.cpu.xeon import xeon_cpu
from repro.proto import parse_schema
from repro.proto.text_format import message_to_text

SCHEMA = parse_schema("""
    syntax = "proto2";

    message Point {
      required double lat = 1;
      required double lng = 2;
    }

    message PlaceUpdate {
      required int64 place_id = 1;
      optional string name = 2;
      optional Point location = 3;
      repeated int32 category_ids = 4 [packed = true];
      optional bool verified = 5;
    }
""")


def build_update():
    update = SCHEMA["PlaceUpdate"].new_message()
    update["place_id"] = 8674012345
    update["name"] = "Golden Gate Overlook"
    location = update.mutable("location")
    location["lat"] = 37.8324
    location["lng"] = -122.4795
    update["category_ids"] = [12, 94, 213]
    update["verified"] = True
    return update


def main():
    update = build_update()
    print("message (text format):")
    print(message_to_text(update))

    # -- software path -----------------------------------------------------
    wire = update.serialize()
    print(f"software-serialized: {len(wire)} bytes: {wire.hex()}")
    parsed = SCHEMA["PlaceUpdate"].parse(wire)
    assert parsed == update

    # -- accelerator path ----------------------------------------------------
    accel = ProtoAccelerator()
    accel.register_schema(SCHEMA)

    # Serialize on the accelerator: materialise the C++ object image,
    # then issue ser_info + do_proto_ser.
    obj_addr = accel.load_object(update)
    ser = accel.serialize(SCHEMA["PlaceUpdate"], obj_addr)
    assert ser.data == wire, "accelerator output must be wire-identical"
    print(f"\naccelerator serialization: {ser.stats.cycles:.0f} cycles "
          f"({accel.throughput_gbps(len(wire), ser.stats.cycles):.2f} "
          "Gbit/s)")

    # Deserialize on the accelerator and read the object back through
    # normal accessors.
    deser = accel.deserialize(SCHEMA["PlaceUpdate"], wire)
    observed = accel.read_message(SCHEMA["PlaceUpdate"], deser.dest_addr)
    assert observed == update
    print(f"accelerator deserialization: {deser.stats.cycles:.0f} cycles "
          f"({accel.throughput_gbps(len(wire), deser.stats.cycles):.2f} "
          "Gbit/s)")

    # -- baselines ----------------------------------------------------------
    print("\nmodeled deserialization throughput (Gbit/s):")
    for cpu in (boom_cpu(), xeon_cpu()):
        _, result = cpu.deserialize(SCHEMA["PlaceUpdate"], wire)
        print(f"  {cpu.name:<12} "
              f"{cpu.gbits_per_second(len(wire), result.cycles):6.2f}")
    print(f"  {'accel':<12} "
          f"{accel.throughput_gbps(len(wire), deser.stats.cycles):6.2f}")


if __name__ == "__main__":
    main()
