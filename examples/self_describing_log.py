#!/usr/bin/env python3
"""A self-describing record log: schema reflection + delimited framing.

Durable storage must stay readable for years while services evolve
(Section 2.1.1's schema-evolution motivation), so production log formats
embed the *schema* next to the data.  This example builds one:

1. the writer serializes its schema as a ``FileDescriptorProto``
   (descriptor.proto-compatible wire bytes) and writes it as the log
   header;
2. records follow as varint-delimited frames, serialized by the
   accelerator;
3. a reader with *no compiled-in schema* parses the header, reconstructs
   the schema dynamically, registers ADTs, and deserializes the records
   on the accelerator.

Run:  python examples/self_describing_log.py
"""

from repro.accel.driver import ProtoAccelerator
from repro.proto import parse_schema
from repro.proto.descriptor_pb import (
    DESCRIPTOR_SCHEMA,
    schema_from_file_descriptor,
    schema_to_file_descriptor,
)
from repro.proto.stream import (
    DelimitedWriter,
    iter_delimited_payloads,
)

WRITER_SCHEMA = parse_schema("""
    syntax = "proto2";
    package metering;

    message UsageRecord {
      required fixed64 customer_id = 1;
      required int64 window_start_us = 2;
      optional string resource = 3;
      oneof amount {
        int64 count = 4;
        double gauge = 5;
      }
      map<string, string> labels = 6;
    }
""")


def write_log(record_count: int = 40) -> bytes:
    """Producer side: header (reflected schema) + accelerated records."""
    accel = ProtoAccelerator()
    accel.register_schema(WRITER_SCHEMA)
    log = DelimitedWriter()
    header = schema_to_file_descriptor(WRITER_SCHEMA,
                                       name="metering.proto")
    log.append(header)
    descriptor = WRITER_SCHEMA["UsageRecord"]
    for index in range(record_count):
        record = descriptor.new_message()
        record["customer_id"] = 0x1000 + index % 7
        record["window_start_us"] = 1_700_000_000_000_000 + index * 60_000
        record["resource"] = ["cpu", "ram", "egress"][index % 3]
        if index % 2:
            record["count"] = index * 11
        else:
            record["gauge"] = index * 0.25
        record.map_set("labels", "region", "us-east1")
        output = accel.serialize(descriptor, accel.load_object(record))
        log.append_wire(output.data)
    return log.getvalue()


def read_log(data: bytes) -> None:
    """Consumer side: schema-free reader."""
    frames = iter_delimited_payloads(data)
    header = DESCRIPTOR_SCHEMA["FileDescriptorProto"].parse(next(frames))
    schema = schema_from_file_descriptor(header)
    print(f"log header: schema {header['name']!r}, package "
          f"{schema.package!r}, "
          f"{len(schema.messages())} message types reconstructed")
    descriptor = schema["UsageRecord"]
    accel = ProtoAccelerator()
    accel.register_schema(schema)
    totals: dict[str, float] = {}
    records = 0
    total_cycles = 0.0
    for frame in frames:
        result = accel.deserialize(descriptor, frame)
        total_cycles += result.stats.cycles
        record = accel.read_message(descriptor, result.dest_addr)
        records += 1
        resource = record["resource"]
        which = record.which_oneof("amount")
        amount = record[which] if which else 0
        totals[resource] = totals.get(resource, 0.0) + float(amount)
        assert record.map_get("labels", "region") == "us-east1"
    print(f"read {records} records on the accelerator "
          f"({total_cycles:,.0f} cycles)")
    for resource, amount in sorted(totals.items()):
        print(f"  {resource:<8} {amount:12.2f}")


def main():
    data = write_log()
    print(f"log size: {len(data):,} bytes (schema header + records)\n")
    read_log(data)


if __name__ == "__main__":
    main()
