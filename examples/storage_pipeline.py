#!/usr/bin/env python3
"""A storage pipeline: persist and scan a record log with the accelerator.

Models the bytes-heavy storage usage that dominates fleet protobuf data
volume (Figure 4b: >92% of protobuf bytes are bytes/string fields): a
writer serializes blob-carrying records into a length-prefixed log, and
a scanner deserializes them back.  Arena reset amortises all accelerator
allocations per scan batch (Section 4.3), the way software arenas
amortise destructor cost (Section 7).

Run:  python examples/storage_pipeline.py
"""

import random

from repro.accel.driver import ProtoAccelerator
from repro.cpu.boom import boom_cpu
from repro.cpu.xeon import xeon_cpu
from repro.proto import parse_schema
from repro.proto.varint import decode_varint, encode_varint

SCHEMA = parse_schema("""
    syntax = "proto2";

    message BlobRecord {
      required fixed64 key = 1;
      required bytes payload = 2;
      optional string content_type = 3;
      optional int64 created_us = 4;
      repeated string tags = 5;
    }
""")


def make_records(count: int, seed: int = 42):
    """Records with fleet-like payload sizes: mostly small, a heavy tail."""
    rng = random.Random(seed)
    records = []
    for index in range(count):
        record = SCHEMA["BlobRecord"].new_message()
        record["key"] = index * 2654435761 % 2**64
        size = min(int(rng.lognormvariate(4.0, 2.0)) + 1, 65536)
        record["payload"] = bytes(rng.getrandbits(8) for _ in range(size))
        record["content_type"] = rng.choice(
            ["application/octet-stream", "image/webp", "text/plain"])
        record["created_us"] = 1_700_000_000_000_000 + index
        if rng.random() < 0.4:
            record["tags"] = [f"shard-{index % 8}", "cold"]
        records.append(record)
    return records


class RecordLog:
    """A length-prefixed log of serialized records (an SSTable-like file)."""

    def __init__(self):
        self._data = bytearray()
        self.record_count = 0

    def append(self, wire: bytes) -> None:
        self._data += encode_varint(len(wire))
        self._data += wire
        self.record_count += 1

    def scan(self):
        """Yield each record's wire bytes."""
        data = bytes(self._data)
        offset = 0
        while offset < len(data):
            length, consumed = decode_varint(data, offset)
            offset += consumed
            yield data[offset:offset + length]
            offset += length

    @property
    def size_bytes(self) -> int:
        return len(self._data)


def main():
    records = make_records(64)
    accel = ProtoAccelerator(deser_arena_bytes=32 << 20,
                             ser_arena_bytes=32 << 20)
    accel.register_schema(SCHEMA)

    # -- write path: serialize on the accelerator, frame into the log ------
    log = RecordLog()
    addresses = [accel.load_object(record) for record in records]
    outputs, write_stats = accel.serialize_batch(SCHEMA["BlobRecord"],
                                                 addresses)
    for wire in outputs:
        log.append(wire)
    print(f"wrote {log.record_count} records, {log.size_bytes:,} log bytes")
    print(f"accelerated write path: {write_stats.cycles:,.0f} cycles "
          f"({accel.throughput_gbps(write_stats.output_bytes, write_stats.cycles):.1f} Gbit/s)")

    # -- read path: scan the log, deserialize each record --------------------
    buffers = list(log.scan())
    dest_addresses, read_stats = accel.deserialize_batch(
        SCHEMA["BlobRecord"], buffers)
    total_payload = 0
    for addr in dest_addresses:
        record = accel.read_message(SCHEMA["BlobRecord"], addr)
        total_payload += len(record["payload"])
    print(f"scanned back {len(dest_addresses)} records, "
          f"{total_payload:,} payload bytes verified")
    print(f"accelerated read path: {read_stats.cycles:,.0f} cycles "
          f"({accel.throughput_gbps(read_stats.wire_bytes, read_stats.cycles):.1f} Gbit/s)")
    print(f"accelerator arena used: {read_stats.arena_bytes:,} bytes; "
          "reset reclaims it in O(1)")
    accel.reset_arenas()

    # -- baselines -----------------------------------------------------------
    print("\nread-path comparison (Gbit/s):")
    wire_bytes = sum(len(b) for b in buffers)
    for cpu in (boom_cpu(), xeon_cpu()):
        cycles = cpu.deserialize_batch_cycles(SCHEMA["BlobRecord"],
                                              buffers)
        print(f"  {cpu.name:<12} "
              f"{cpu.gbits_per_second(wire_bytes, cycles):8.2f}")
    print(f"  {'accel':<12} "
          f"{accel.throughput_gbps(wire_bytes, read_stats.cycles):8.2f}")


if __name__ == "__main__":
    main()
