#!/usr/bin/env python3
"""Generate HyperProtoBench and run it on all three systems.

Writes each generated benchmark's .proto schema next to this script
(mirroring the open-source HyperProtoBench release) and prints the
Figure 12/13 comparison for a small batch.

Run:  python examples/hyperprotobench_demo.py
"""

import pathlib

from repro.bench.report import format_results_table, speedup_summary
from repro.bench.runner import Workload, run_deserialization, run_serialization
from repro.hyperprotobench import bench_names
from repro.hyperprotobench.workload import generate_bench

OUT_DIR = pathlib.Path(__file__).resolve().parent / "generated_protos"


def main():
    OUT_DIR.mkdir(exist_ok=True)
    deser_results, ser_results = [], []
    for name in bench_names():
        bench = generate_bench(name, batch=8)
        proto_path = OUT_DIR / f"{name}.proto"
        proto_path.write_text(bench.proto_source)
        types = len(bench.schema.messages())
        avg_bytes = (sum(len(m.serialize()) for m in bench.messages)
                     // len(bench.messages))
        print(f"{name}: {types} message types, "
              f"avg {avg_bytes} wire bytes/message -> {proto_path.name}")
        workload = Workload(bench.name, bench.root, bench.messages)
        deser_results.append(run_deserialization(workload))
        ser_results.append(run_serialization(workload))

    print()
    print(format_results_table(deser_results,
                               "HyperProtoBench deserialization (Gbit/s)"))
    print(speedup_summary(deser_results))
    print()
    print(format_results_table(ser_results,
                               "HyperProtoBench serialization (Gbit/s)"))
    print(speedup_summary(ser_results))


if __name__ == "__main__":
    main()
