#!/usr/bin/env python3
"""A simulated RPC service pair using accelerated ser/deser.

Models the scenario the paper's introduction motivates: a frontend calls
a backend over RPC, both sides paying serialization tax on every
exchange.  The service is declared in the .proto (protobuf is a data
*and service* description system), the client uses a generated-style
stub, and both ends offload ser/deser to their accelerator.

Also demonstrates the Section 3.4 insight: only a minority of fleet
ser/deser is RPC-initiated -- the backend persists audit records too, a
storage-side serialization an on-NIC accelerator could never help.

Run:  python examples/rpc_service.py
"""

from repro.accel.driver import ProtoAccelerator
from repro.cpu.boom import boom_cpu
from repro.fleet.distributions import RPC_SHARE_OF_DESER, RPC_SHARE_OF_SER
from repro.proto import parse_schema
from repro.proto.rpc import ServiceHandler, Stub

SCHEMA = parse_schema("""
    syntax = "proto2";

    message SearchRequest {
      required string query = 1;
      optional int32 page = 2 [default = 1];
      optional int32 results_per_page = 3 [default = 10];
      repeated string filters = 4;
    }

    message Result {
      required string url = 1;
      optional string title = 2;
      optional float score = 3;
    }

    message SearchResponse {
      repeated Result results = 1;
      optional int64 latency_us = 2;
      optional bool truncated = 3;
    }

    message AuditRecord {
      required int64 timestamp_us = 1;
      required string query = 2;
      optional int32 result_count = 3;
    }

    service Search {
      rpc Find (SearchRequest) returns (SearchResponse);
    }
""")


class SearchBackend:
    """The callee: handles Find() and persists audit records."""

    def __init__(self):
        self.accel = ProtoAccelerator()
        self.accel.register_schema(SCHEMA)
        self.handler = ServiceHandler(SCHEMA.service("Search"),
                                      accelerator=self.accel)
        self.handler.register("Find", self._find)
        self.audit_log: list[bytes] = []

    def _find(self, request):
        response = SCHEMA["SearchResponse"].new_message()
        for rank in range(request["results_per_page"]):
            result = response["results"].add()
            result["url"] = f"https://example.com/{request['query']}/{rank}"
            result["title"] = f"Result {rank} for {request['query']}"
            result["score"] = 1.0 / (rank + 1)
        response["latency_us"] = 137
        response["truncated"] = False
        self._persist_audit(request, len(response["results"]))
        return response

    def _persist_audit(self, request, result_count):
        # Storage-side serialization: never touches the NIC (the paper's
        # argument for near-core placement, Section 3.4).
        audit = SCHEMA["AuditRecord"].new_message()
        audit["timestamp_us"] = 1_700_000_000_000_000 + len(self.audit_log)
        audit["query"] = request["query"]
        audit["result_count"] = result_count
        output = self.accel.serialize(SCHEMA["AuditRecord"],
                                      self.accel.load_object(audit))
        self.audit_log.append(output.data)

def software_baseline_cycles(queries: list[str]) -> float:
    """The same exchanges with software ser/deser on the BOOM core."""
    cpu = boom_cpu()
    cycles = 0.0
    for query in queries:
        request = SCHEMA["SearchRequest"].new_message()
        request["query"] = query
        data, result = cpu.serialize(request)
        cycles += result.cycles
        _, result = cpu.deserialize(SCHEMA["SearchRequest"], data)
        cycles += result.cycles
        response = SCHEMA["SearchResponse"].new_message()
        for rank in range(10):
            entry = response["results"].add()
            entry["url"] = f"https://example.com/{query}/{rank}"
            entry["title"] = f"Result {rank} for {query}"
            entry["score"] = 1.0 / (rank + 1)
        data, result = cpu.serialize(response)
        cycles += result.cycles
        _, result = cpu.deserialize(SCHEMA["SearchResponse"], data)
        cycles += result.cycles
    return cycles


def main():
    backend = SearchBackend()
    client_accel = ProtoAccelerator()
    client_accel.register_schema(SCHEMA)
    stub = Stub(SCHEMA.service("Search"), transport=backend.handler,
                accelerator=client_accel)

    queries = [f"protobuf accelerator {index}" for index in range(20)]
    for query in queries:
        request = SCHEMA["SearchRequest"].new_message()
        request["query"] = query
        request["filters"] = ["lang:en", "safe:on"]
        response = stub.call("Find", request)
        assert len(response["results"]) == 10

    # Tally the modeled offload cost of one representative exchange
    # (request ser + deser, response ser + deser) and scale by call count.
    request = SCHEMA["SearchRequest"].new_message()
    request["query"] = queries[0]
    request["filters"] = ["lang:en", "safe:on"]
    per_call = 0.0
    ser = client_accel.serialize(SCHEMA["SearchRequest"],
                                 client_accel.load_object(request))
    per_call += ser.stats.cycles
    deser = backend.accel.deserialize(SCHEMA["SearchRequest"], ser.data)
    per_call += deser.stats.cycles
    response = backend._find(request)
    ser = backend.accel.serialize(SCHEMA["SearchResponse"],
                                  backend.accel.load_object(response))
    per_call += ser.stats.cycles
    deser = client_accel.deserialize(SCHEMA["SearchResponse"], ser.data)
    per_call += deser.stats.cycles
    accel_cycles = per_call * len(queries)

    software_cycles = software_baseline_cycles(queries)
    print(f"exchanges completed over /Search/Find: {stub.calls_made}")
    print(f"audit records persisted: {len(backend.audit_log)}")
    print(f"accelerated ser/deser cycles: {accel_cycles:,.0f}")
    print(f"software (BOOM) ser/deser cycles: {software_cycles:,.0f}")
    print(f"speedup on the serialization tax: "
          f"{software_cycles / accel_cycles:.1f}x")
    print()
    print(f"fleet context (Section 3.4): only {RPC_SHARE_OF_DESER:.0%} "
          f"of deserialization and {RPC_SHARE_OF_SER:.0%} of "
          "serialization cycles are RPC-initiated --")
    print("the audit-log writes above are the other kind, and they are "
          "why the")
    print("accelerator sits near the core instead of on the NIC.")


if __name__ == "__main__":
    main()
