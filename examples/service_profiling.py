#!/usr/bin/env python3
"""Profile a service's protobuf tax and size the accelerator win.

The workflow an infrastructure team would actually run: attach the
GWP-style sampler to a service's message workload, see where protobuf
cycles go (a per-service Figure 2), then apply measured accelerator
speedups to estimate the recoverable fraction -- including the Section 7
merge/copy/clear extension ops.

Run:  python examples/service_profiling.py
"""

from repro.accel.driver import ProtoAccelerator
from repro.cpu.boom import BOOM_PARAMS, boom_cpu
from repro.cpu.ops import clear_cycles, copy_cycles, merge_cycles
from repro.fleet.gwp import (
    GwpSampler,
    accelerator_savings,
    profile_software_service,
)
from repro.hyperprotobench import build_hyperprotobench


def measure_accel_speedups(workload) -> dict[str, float]:
    """Measure per-operation accelerator speedups on this workload."""
    accel = ProtoAccelerator()
    accel.register_types([workload.descriptor])
    cpu_cycles = {"deserialize": 0.0, "serialize": 0.0, "copy": 0.0,
                  "merge": 0.0, "clear": 0.0}
    accel_cycles = dict.fromkeys(cpu_cycles, 0.0)
    cpu = boom_cpu()
    for message in workload.messages:
        wire = message.serialize()
        _, result = cpu.deserialize(workload.descriptor, wire)
        cpu_cycles["deserialize"] += result.cycles
        _, result = cpu.serialize(message)
        cpu_cycles["serialize"] += result.cycles
        cpu_cycles["copy"] += copy_cycles(BOOM_PARAMS, message)
        cpu_cycles["merge"] += merge_cycles(BOOM_PARAMS, message, message)
        cpu_cycles["clear"] += clear_cycles(BOOM_PARAMS, message)

        deser = accel.deserialize(workload.descriptor, wire)
        accel_cycles["deserialize"] += deser.stats.cycles
        src = accel.load_object(message)
        accel_cycles["serialize"] += accel.serialize(
            workload.descriptor, src).stats.cycles
        dest, copy_stats = accel.copy_message(workload.descriptor, src)
        accel_cycles["copy"] += copy_stats.cycles
        accel_cycles["merge"] += accel.merge_messages(
            workload.descriptor, src, dest).cycles
        accel_cycles["clear"] += accel.clear_message(
            workload.descriptor, dest).cycles
    speedups = {op: cpu_cycles[op] / accel_cycles[op]
                for op in cpu_cycles}
    speedups["byte_size"] = speedups["serialize"]  # offloaded together
    return speedups


def main():
    workload = build_hyperprotobench("bench2", batch=24)
    print(f"profiling service workload {workload.name!r} "
          f"({len(workload.messages)} messages) on riscv-boom\n")

    sampler = GwpSampler(sample_rate=0.5, seed=7)
    profile = profile_software_service(
        boom_cpu(), workload.descriptor, workload.messages,
        sampler=sampler)
    print("protobuf cycle breakdown (sampled at 50%, unbiased):")
    for category, share in profile.top(count=9):
        print(f"  {category:<12} {share:6.1%}")
    print(f"  ({sampler.events_recorded} of {sampler.events_seen} "
          "events sampled)\n")

    speedups = measure_accel_speedups(workload)
    print("measured accelerator speedups on this workload:")
    for op, factor in speedups.items():
        print(f"  {op:<12} {factor:5.1f}x")

    base_ops = {op: speedups[op]
                for op in ("deserialize", "serialize", "byte_size")}
    print(f"\nrecoverable with ser/deser offload alone: "
          f"{accelerator_savings(profile, base_ops):.1%} of protobuf "
          "cycles")
    print(f"recoverable with Section 7 extension ops:  "
          f"{accelerator_savings(profile, speedups):.1%}")


if __name__ == "__main__":
    main()
