#!/usr/bin/env python3
"""Reproduce the Section 3 fleet profiling study end to end.

Prints Table 1, the Figure 2 operation breakdown and opportunity
arithmetic, the message-size and field-type distributions, the density
analysis behind the ADT design decision, and the Section 3.9 insights.

Run:  python examples/fleet_study.py
"""

from repro.fleet.cycle_model import CycleAttributionModel
from repro.fleet.distributions import (
    FLEET_OP_SHARES,
    cumulative_message_size_share,
    density_share_above,
    depth_coverage,
    RPC_SHARE_OF_DESER,
    RPC_SHARE_OF_SER,
)
from repro.fleet.profiler import GwpProfile, fleet_opportunity
from repro.fleet.sampler import FleetSampler, SampleAnalysis
from repro.proto.types import FieldType, performance_class


def print_table1():
    print("Table 1: performance-similar protobuf type classes")
    groups: dict[str, list[str]] = {}
    for field_type in FieldType:
        if field_type in (FieldType.GROUP, FieldType.MESSAGE):
            continue
        cls = performance_class(field_type).value
        groups.setdefault(cls, []).append(field_type.value)
    for cls, members in groups.items():
        print(f"  {cls:<14} {', '.join(members)}")


def print_opportunity():
    print("\nSection 3.2: the fleet-wide opportunity")
    numbers = fleet_opportunity()
    profile = GwpProfile()
    print(f"  protobuf ops: {numbers['protobuf_share']:.1%} of fleet "
          "cycles; "
          f"{numbers['cpp_share_of_protobuf']:.0%} of that is C++")
    for op, share in profile.figure2_rows():
        print(f"    {op:<12} {share:6.1%} of C++ protobuf cycles")
    print(f"  => accelerating ser+deser addresses "
          f"{numbers['accelerated_opportunity']:.2%} of ALL fleet cycles")
    print(f"  => Section 7 ops (merge/copy/clear) add another "
          f"{numbers['future_ops_opportunity']:.2%}")


def print_distributions():
    print("\nSections 3.5-3.6: what the accelerator must handle")
    analysis = SampleAnalysis(FleetSampler(seed=1).sample_many(10000))
    print(f"  messages <=8 B: {cumulative_message_size_share(8):.0%}, "
          f"<=32 B: {cumulative_message_size_share(32):.0%}, "
          f"<=512 B: {cumulative_message_size_share(512):.0%}")
    print(f"  varint-like fields: "
          f"{analysis.varint_like_count_share():.0%} of field count")
    print(f"  bytes-like data: {analysis.bytes_like_byte_share():.0%} "
          "of message bytes")
    model = CycleAttributionModel()
    above = model.share_of_time_above(8.0, "deserialize")
    print(f"  but only {above:.0%} of deserialization time runs above "
          "1 GB/s --")
    print("  acceleration must cover the whole type/size space, not just "
          "memcpy")


def print_design_decisions():
    print("\nSections 3.7-3.9: design decisions")
    print(f"  density > 1/64 for {density_share_above(1 / 64):.0%} of "
          "messages -> per-type ADTs + sparse hasbits beat per-instance "
          "tables")
    print(f"  depth <=12 covers {depth_coverage(12):.3%} of bytes, "
          f"<=25 covers {depth_coverage(25):.5%} -> 25-deep on-chip "
          "context stacks")
    print(f"  RPC initiates only {RPC_SHARE_OF_DESER:.0%} of deser / "
          f"{RPC_SHARE_OF_SER:.0%} of ser cycles -> place the "
          "accelerator near the core, not on the NIC")


def main():
    print_table1()
    print_opportunity()
    print_distributions()
    print_design_decisions()


if __name__ == "__main__":
    main()
